// Package cluster turns N independent prefcoverd processes into one
// sharded serving system behind a routing gateway. Placement is by
// consistent hashing: every node contributes VNodes virtual points to a
// hash ring, graphs are placed on the first R distinct nodes clockwise
// from their key's hash, and the gateway replicates writes to all R,
// routes reads and solves to a replica with a warm solve cache (sticky
// by graph, least-loaded tiebreak from /readyz probes), and fails over
// between replicas through internal/retry when a node misbehaves. Each
// node holds only its shard's graphs and caches — never the full
// inventory — which is what keeps per-node state small as the cluster
// grows (the hash-based placement discipline of succinct coverage
// oracles, applied to whole graphs instead of sketch cells).
//
// The hashing is deliberately boring and fully deterministic: SHA-256 of
// the key (the registry graph name — the identity the HTTP API routes
// on; the content hash stays the ETag/cache identity inside each node),
// and SHA-256 of "node\x00vnode-index" for ring points. Two gateways
// configured with the same node set compute identical placements with no
// coordination, so a fleet of gateways needs no shared state.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the virtual-node count per physical node. 128 points
// keeps the expected load imbalance across a handful of nodes within a
// few percent while the ring stays small enough to rebuild on every
// membership change.
const DefaultVNodes = 128

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Safe for concurrent
// use; membership changes rebuild the (small) sorted point slice.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []ringPoint
}

// NewRing returns an empty ring; vnodes <= 0 selects DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

// VNodes reports the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// keyHash maps a placement key onto the ring: the first 8 bytes of its
// SHA-256, big-endian. The full digest is overkill for load balancing but
// guarantees the placement function never drifts between builds — the
// cross-process determinism the gateway fleet depends on.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// pointHash positions virtual node i of a member. The NUL separator keeps
// ("node1", 0) and ("node10", ...) from colliding textually.
func pointHash(node string, i int) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(i)))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts node's virtual points; it reports whether the node was new.
func (r *Ring) Add(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return false
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return true
}

// Remove drops node from the ring; it reports whether it was a member.
// Only ~1/N of keys remap: every other key's clockwise walk is unchanged.
func (r *Ring) Remove(node string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return false
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Contains reports ring membership.
func (r *Ring) Contains(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Nodes lists the members, sorted for deterministic output.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len is the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns up to n distinct nodes for key, in ring order starting
// at the first point clockwise from the key's hash — replica placement.
// The walk skips points of nodes already chosen, so an R-replica set
// never lands two replicas on one node. Fewer than n members returns
// them all. The first returned node is the key's primary.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	// First point with hash >= h, wrapping at the top of the ring.
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Primary is Lookup(key, 1), or "" on an empty ring.
func (r *Ring) Primary(key string) string {
	nodes := r.Lookup(key, 1)
	if len(nodes) == 0 {
		return ""
	}
	return nodes[0]
}

// LoadShares estimates each member's share of primary placements by
// hashing samples synthetic keys around the ring — the balance figure
// statusz shows. samples <= 0 uses 1024.
func (r *Ring) LoadShares(samples int) map[string]float64 {
	if samples <= 0 {
		samples = 1024
	}
	counts := make(map[string]int)
	for i := 0; i < samples; i++ {
		if p := r.Primary("ring-share-sample-" + strconv.Itoa(i)); p != "" {
			counts[p]++
		}
	}
	out := make(map[string]float64, len(counts))
	for n, c := range counts {
		out[n] = float64(c) / float64(samples)
	}
	return out
}
