package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:7070", i+1)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("graph-%04d", i)
	}
	return out
}

// Removing one of N nodes must remap only the keys that node owned
// (~1/N of them); every key whose primary survives must keep it. This is
// the property that makes node drain cheap: no cluster-wide reshuffle.
func TestRingRemoveRemapsOnlyOwnedKeys(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		r := NewRing(0)
		nodes := ringNodes(n)
		for _, nd := range nodes {
			r.Add(nd)
		}
		keys := ringKeys(4000)
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = r.Primary(k)
		}
		victim := nodes[n/2]
		r.Remove(victim)

		moved := 0
		for _, k := range keys {
			after := r.Primary(k)
			if before[k] == victim {
				if after == victim {
					t.Fatalf("n=%d: key %q still maps to removed node", n, k)
				}
				moved++
				continue
			}
			if after != before[k] {
				t.Fatalf("n=%d: key %q remapped %s -> %s though its primary survived",
					n, k, before[k], after)
			}
		}
		share := float64(moved) / float64(len(keys))
		want := 1.0 / float64(n)
		// With 128 vnodes the victim's share is 1/N within a loose factor.
		if share < want*0.5 || share > want*1.7 {
			t.Fatalf("n=%d: removed node owned %.3f of keys, want ~%.3f", n, share, want)
		}
	}
}

// Placement must be identical for the same node set regardless of the
// order nodes joined or of prior membership churn — the proxy for
// "deterministic across processes": two gateways that each compute the
// ring from the same -nodes list agree on every placement.
func TestRingPlacementDeterministic(t *testing.T) {
	nodes := ringNodes(5)
	keys := ringKeys(500)

	a := NewRing(64)
	for _, nd := range nodes {
		a.Add(nd)
	}
	// b: reversed insertion order plus churn of an unrelated node.
	b := NewRing(64)
	b.Add("http://transient:1")
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	b.Remove("http://transient:1")

	for _, k := range keys {
		pa, pb := a.Lookup(k, 2), b.Lookup(k, 2)
		if len(pa) != len(pb) {
			t.Fatalf("key %q: replica counts differ: %v vs %v", k, pa, pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("key %q: placement differs at rank %d: %v vs %v", k, i, pa, pb)
			}
		}
	}
}

// A golden placement table pins the hash function itself: if keyHash or
// pointHash ever changes (different digest, different byte order), every
// deployed gateway would disagree with a new one about where graphs
// live. Update these values only with a deliberate migration plan.
func TestRingGoldenPlacements(t *testing.T) {
	r := NewRing(128)
	for _, nd := range []string{"http://a:1", "http://b:1", "http://c:1"} {
		r.Add(nd)
	}
	golden := map[string][2]string{
		"loadgen-main": {"http://b:1", "http://c:1"},
		"graph-0001":   {"http://a:1", "http://b:1"},
		"graph-0002":   {"http://a:1", "http://c:1"},
		"yoochoose":    {"http://b:1", "http://c:1"},
	}
	for key, want := range golden {
		got := r.Lookup(key, 2)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("golden placement for %q changed: got %v, want %v (hash function drift?)",
				key, got, want)
		}
	}
}

// R-replication must never place two replicas on the same node, for any
// R up to and beyond the member count.
func TestRingReplicasDistinct(t *testing.T) {
	r := NewRing(0)
	nodes := ringNodes(5)
	for _, nd := range nodes {
		r.Add(nd)
	}
	for _, k := range ringKeys(1000) {
		for _, rep := range []int{2, 3, 5, 9} {
			got := r.Lookup(k, rep)
			wantLen := rep
			if wantLen > len(nodes) {
				wantLen = len(nodes)
			}
			if len(got) != wantLen {
				t.Fatalf("key %q R=%d: got %d replicas, want %d", k, rep, len(got), wantLen)
			}
			seen := make(map[string]bool, len(got))
			for _, nd := range got {
				if seen[nd] {
					t.Fatalf("key %q R=%d: duplicate replica %s in %v", k, rep, nd, got)
				}
				seen[nd] = true
			}
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(16)
	if got := r.Lookup("k", 2); got != nil {
		t.Fatalf("empty ring Lookup = %v, want nil", got)
	}
	if r.Primary("k") != "" {
		t.Fatal("empty ring Primary should be empty")
	}
	if !r.Add("http://a:1") || r.Add("http://a:1") {
		t.Fatal("Add should report first insertion only")
	}
	if got := r.Lookup("k", 3); len(got) != 1 || got[0] != "http://a:1" {
		t.Fatalf("single-node ring Lookup = %v", got)
	}
	if got := r.Lookup("k", 0); got != nil {
		t.Fatalf("Lookup n=0 = %v, want nil", got)
	}
	if !r.Remove("http://a:1") || r.Remove("http://a:1") {
		t.Fatal("Remove should report membership")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after removal", r.Len())
	}
}

func TestRingLoadSharesBalanced(t *testing.T) {
	r := NewRing(0)
	for _, nd := range ringNodes(4) {
		r.Add(nd)
	}
	shares := r.LoadShares(4096)
	if len(shares) != 4 {
		t.Fatalf("LoadShares covered %d nodes, want 4", len(shares))
	}
	for nd, s := range shares {
		if s < 0.10 || s > 0.45 {
			t.Errorf("node %s holds %.3f of the ring, outside [0.10, 0.45]", nd, s)
		}
	}
}
