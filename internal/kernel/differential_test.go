// The cross-kernel differential suite: every kernel × variant × pinned-set
// combination must produce the byte-identical ordered prefix and cover
// curve as the existing scan/lazy strategies, and agree with the
// brute-force cover.Evaluate oracle, on synthetic presets, adversarial
// degree distributions, and fuzz-generated graphs. This suite is what lets
// the serving layers above trust the rewritten numerical core.
package kernel_test

import (
	"math"
	"math/rand"
	"testing"

	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
	"prefcover/internal/kernel"
	"prefcover/internal/synth"
)

// diffGraph is one corpus entry. Pins are node ids retained before the
// greedy fill (nil for the unpinned run).
type diffGraph struct {
	name string
	g    *graph.Graph
	k    int
}

// corpus builds the differential corpus for one variant: the paper fixture,
// synthetic presets, adversarial degree distributions, and seeded
// fuzz-style random graphs.
func corpus(t *testing.T, variant graph.Variant) []diffGraph {
	t.Helper()
	var out []diffGraph
	out = append(out, diffGraph{name: "figure1", g: fixture.Figure1Graph(), k: 3})

	spec, err := synth.PresetGraphSpec(synth.YC, 0.001, 42)
	if err != nil {
		t.Fatal(err)
	}
	spec.Variant = variant
	preset, err := synth.GenerateGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, diffGraph{name: "preset-yc", g: preset, k: 25})

	out = append(out,
		diffGraph{name: "star-hub", g: starGraph(200, variant), k: 12},
		diffGraph{name: "all-ties", g: tieGraph(64, variant), k: 16},
		diffGraph{name: "dense-16", g: denseGraph(16, variant), k: 8},
		diffGraph{name: "self-loops", g: selfLoopGraph(40, variant), k: 10},
		diffGraph{name: "zero-weights", g: zeroWeightGraph(50, variant), k: 10},
	)

	rng := rand.New(rand.NewSource(0xd1ff ^ int64(variant)))
	for trial := 0; trial < 20; trial++ {
		n := 16 + rng.Intn(150)
		maxDeg := 1 + rng.Intn(10)
		g := graphtest.Random(rng, n, maxDeg, variant)
		out = append(out, diffGraph{
			name: "random-" + string(rune('a'+trial%26)) + "-" + itoa(trial),
			g:    g,
			k:    1 + rng.Intn(n),
		})
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for ; n > 0; n /= 10 {
		b = append([]byte{byte('0' + n%10)}, b...)
	}
	return string(b)
}

// starGraph: one hub receiving an in-edge from every other node — the
// adversarial in-degree that overflows any top-T sketch list and forces
// the residual bound to carry most of the hub's gain.
func starGraph(n int, variant graph.Variant) *graph.Graph {
	b := graph.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.AddNode(1.0 / float64(n))
	}
	for v := int32(1); v < int32(n); v++ {
		w := 0.3 + 0.5*float64(v)/float64(n)
		if variant == graph.Normalized {
			w *= 0.9
		}
		b.AddEdge(v, 0, w)
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// tieGraph: identical weights everywhere, ring topology — every early
// iteration is a mass tie, so any kernel whose tie-break deviates from
// (gain desc, id asc) diverges immediately.
func tieGraph(n int, variant graph.Variant) *graph.Graph {
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddNode(1.0 / float64(n))
	}
	for v := int32(0); v < int32(n); v++ {
		b.AddEdge(v, (v+1)%int32(n), 0.25)
		b.AddEdge(v, (v+int32(n)-1)%int32(n), 0.25)
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// denseGraph: complete digraph — maximal in-degree relative to n.
func denseGraph(n int, variant graph.Variant) *graph.Graph {
	b := graph.NewBuilder(n, n*n)
	for i := 0; i < n; i++ {
		b.AddNode(float64(i+1) * 2 / float64(n*(n+1)))
	}
	for v := int32(0); v < int32(n); v++ {
		for u := int32(0); u < int32(n); u++ {
			if u == v {
				continue
			}
			w := 0.1 + 0.02*float64(u)
			if variant == graph.Normalized {
				w /= float64(n) // keep outgoing sums below 1
			}
			b.AddEdge(v, u, w)
		}
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// selfLoopGraph: the builder permits self-loops; the Gain loops must skip
// them (the own-weight term already accounts for self-coverage).
func selfLoopGraph(n int, variant graph.Variant) *graph.Graph {
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddNode(1.0 / float64(n))
	}
	for v := int32(0); v < int32(n); v++ {
		b.AddEdge(v, v, 0.4)
		b.AddEdge(v, (v+3)%int32(n), 0.3)
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// zeroWeightGraph: every third node has zero request weight — exercises
// the ItemCoverage conventions and zero-gain candidates.
func zeroWeightGraph(n int, variant graph.Variant) *graph.Graph {
	b := graph.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			b.AddNode(0)
		} else {
			b.AddNode(1.0 / float64(n))
		}
	}
	for v := int32(0); v < int32(n); v++ {
		b.AddEdge(v, (v+1)%int32(n), 0.5)
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// strategyConfigs returns the five deterministic strategies under test.
// lazyflat runs with Workers 4 so `go test -race` exercises the
// chunk-parallel heap build with real goroutines.
func strategyConfigs() map[string]func(*greedy.Options) {
	return map[string]func(*greedy.Options){
		"scan":     func(o *greedy.Options) {},
		"lazy":     func(o *greedy.Options) { o.Lazy = true },
		"parallel": func(o *greedy.Options) { o.Workers = 3 },
		"lazyflat": func(o *greedy.Options) { o.Strategy = greedy.StrategyLazyFlat; o.Workers = 4 },
		"sketch":   func(o *greedy.Options) { o.Strategy = greedy.StrategySketch },
	}
}

// TestDifferentialAllKernels is the headline cross-kernel property: for
// every corpus graph × variant × {no pins, pinned}, all five strategies
// produce the byte-identical ordered prefix, per-step gains, cover curve
// and per-item coverage report.
func TestDifferentialAllKernels(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			for _, dg := range corpus(t, variant) {
				n := dg.g.NumNodes()
				pinSets := [][]int32{nil}
				if p := pinsFor(n, dg.k); p != nil {
					pinSets = append(pinSets, p)
				}
				for pi, pins := range pinSets {
					base := greedy.Options{Variant: variant, K: dg.k, Pinned: pins}
					var ref *greedy.Solution
					for _, name := range []string{"scan", "lazy", "parallel", "lazyflat", "sketch"} {
						opts := base
						strategyConfigs()[name](&opts)
						sol, err := greedy.Solve(dg.g, opts)
						if err != nil {
							t.Fatalf("%s pins=%d %s: %v", dg.name, pi, name, err)
						}
						if name == "scan" {
							ref = sol
							continue
						}
						assertIdentical(t, dg.name, name, pi, ref, sol)
					}
					// The incremental cover must agree with the from-scratch
					// oracle evaluation of the final retained set.
					fresh, err := cover.EvaluateSet(dg.g, variant, ref.Order)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(fresh-ref.Cover) > 1e-9 {
						t.Fatalf("%s pins=%d: incremental cover %g != oracle %g", dg.name, pi, ref.Cover, fresh)
					}
				}
			}
		})
	}
}

// pinsFor returns a small deterministic pinned set, or nil when the budget
// cannot accommodate one.
func pinsFor(n, k int) []int32 {
	if k < 3 || n < 6 {
		return nil
	}
	a, b := int32(n/3), int32(2*n/3)
	if a == b {
		return nil
	}
	return []int32{b, a} // deliberately unsorted: pin order must be preserved
}

// assertIdentical demands byte-identical solver output, not tolerance
// agreement: Order, Gains, Cover, and the Coverage report must match the
// scan reference exactly, per the kernel's bit-identical arithmetic
// contract.
func assertIdentical(t *testing.T, gname, sname string, pins int, want, got *greedy.Solution) {
	t.Helper()
	if len(want.Order) != len(got.Order) {
		t.Fatalf("%s pins=%d %s: order length %d != %d", gname, pins, sname, len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if want.Order[i] != got.Order[i] {
			t.Fatalf("%s pins=%d %s: order diverges at step %d: %d != %d",
				gname, pins, sname, i, got.Order[i], want.Order[i])
		}
		if want.Gains[i] != got.Gains[i] {
			t.Fatalf("%s pins=%d %s: gain at step %d not bit-identical: %v != %v",
				gname, pins, sname, i, got.Gains[i], want.Gains[i])
		}
	}
	if want.Cover != got.Cover {
		t.Fatalf("%s pins=%d %s: cover not bit-identical: %v != %v", gname, pins, sname, got.Cover, want.Cover)
	}
	for v := range want.Coverage {
		if want.Coverage[v] != got.Coverage[v] {
			t.Fatalf("%s pins=%d %s: coverage[%d] not bit-identical: %v != %v",
				gname, pins, sname, v, got.Coverage[v], want.Coverage[v])
		}
	}
}

// TestDifferentialAgainstBruteForceOracle replays each solver selection
// against a from-scratch cover.Evaluate greedy: at every step, the node the
// solver chose must achieve the oracle-maximal marginal gain (within float
// tolerance — the oracle computes covers in product form, a different
// rounding path than the incremental engines).
func TestDifferentialAgainstBruteForceOracle(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x0bf ^ int64(variant)))
			graphs := []diffGraph{
				{name: "figure1", g: fixture.Figure1Graph(), k: 3},
				{name: "ties", g: tieGraph(12, variant), k: 5},
				{name: "dense", g: denseGraph(10, variant), k: 5},
			}
			for trial := 0; trial < 6; trial++ {
				n := 8 + rng.Intn(24)
				graphs = append(graphs, diffGraph{
					name: "random-" + itoa(trial),
					g:    graphtest.Random(rng, n, 1+rng.Intn(5), variant),
					k:    1 + rng.Intn(5),
				})
			}
			for _, dg := range graphs {
				pinSets := [][]int32{nil}
				if p := pinsFor(dg.g.NumNodes(), dg.k); p != nil {
					pinSets = append(pinSets, p)
				}
				for _, pins := range pinSets {
					for name, mod := range strategyConfigs() {
						opts := greedy.Options{Variant: variant, K: dg.k, Pinned: pins}
						mod(&opts)
						sol, err := greedy.Solve(dg.g, opts)
						if err != nil {
							t.Fatalf("%s/%s: %v", dg.name, name, err)
						}
						checkOracleGreedy(t, dg.name, name, dg.g, variant, pins, sol)
					}
				}
			}
		})
	}
}

// TestDifferentialTinySketchTops drives the kernel picker directly with
// deliberately starved sketches (top 1, 2, 4): the residual bound then
// carries most of each node's contribution, which is the regime where an
// inadmissible bound or a wrong exact-fallback condition would flip
// selections. The prefix must still match the scan reference exactly.
func TestDifferentialTinySketchTops(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x70b5 ^ int64(variant)))
			graphs := []diffGraph{
				{name: "star-hub", g: starGraph(120, variant), k: 10},
				{name: "dense", g: denseGraph(16, variant), k: 8},
				{name: "ties", g: tieGraph(48, variant), k: 12},
			}
			for trial := 0; trial < 8; trial++ {
				n := 20 + rng.Intn(100)
				graphs = append(graphs, diffGraph{
					name: "random-" + itoa(trial),
					g:    graphtest.Random(rng, n, 2+rng.Intn(8), variant),
					k:    2 + rng.Intn(n/2),
				})
			}
			for _, dg := range graphs {
				ref, err := greedy.Solve(dg.g, greedy.Options{Variant: variant, K: dg.k})
				if err != nil {
					t.Fatal(err)
				}
				pinSets := [][]int32{nil}
				if p := pinsFor(dg.g.NumNodes(), dg.k); p != nil {
					pinSets = append(pinSets, p)
				}
				for _, top := range []int{1, 2, 4} {
					sk, err := kernel.BuildSketch(nil, dg.g, variant, top)
					if err != nil {
						t.Fatal(err)
					}
					for pi, pins := range pinSets {
						want := ref
						if pins != nil {
							if want, err = greedy.Solve(dg.g, greedy.Options{Variant: variant, K: dg.k, Pinned: pins}); err != nil {
								t.Fatal(err)
							}
						}
						order, gains, cov := runKernelSolve(t, dg.g, variant, dg.k, pins, sk)
						if len(order) != len(want.Order) {
							t.Fatalf("%s top=%d pins=%d: %d selections, want %d", dg.name, top, pi, len(order), len(want.Order))
						}
						for i := range order {
							if order[i] != want.Order[i] || gains[i] != want.Gains[i] {
								t.Fatalf("%s top=%d pins=%d: step %d got (%d,%v) want (%d,%v)",
									dg.name, top, pi, i, order[i], gains[i], want.Order[i], want.Gains[i])
							}
						}
						if cov != want.Cover {
							t.Fatalf("%s top=%d pins=%d: cover %v != %v", dg.name, top, pi, cov, want.Cover)
						}
					}
				}
			}
		})
	}
}

// runKernelSolve is a minimal greedy driver over the raw kernel API,
// mirroring greedy.Solve's loop shape: pins first, then picker-driven fill.
func runKernelSolve(t *testing.T, g *graph.Graph, variant graph.Variant, k int, pins []int32, sk *kernel.Sketch) (order []int32, gains []float64, cov float64) {
	t.Helper()
	st := kernel.NewState(g, variant)
	defer st.Release()
	for _, v := range pins {
		order = append(order, v)
		gains = append(gains, st.Add(v))
	}
	p := kernel.NewPicker(nil, st, 2, sk)
	for len(order) < k {
		v, gain, _, ok, err := p.Pick()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		st.Add(v)
		order = append(order, v)
		gains = append(gains, gain)
	}
	return order, gains, st.Cover()
}

// checkOracleGreedy verifies the solver's trajectory step by step against
// brute-force evaluation: following the solver's own prefix, the node it
// picked must be within tolerance of the best-possible marginal gain.
func checkOracleGreedy(t *testing.T, gname, sname string, g *graph.Graph, variant graph.Variant, pins []int32, sol *greedy.Solution) {
	t.Helper()
	const tol = 1e-9
	n := g.NumNodes()
	retained := make([]bool, n)
	cur := 0.0
	pinned := make(map[int32]bool, len(pins))
	for _, v := range pins {
		pinned[v] = true
	}
	for step, v := range sol.Order {
		if pinned[v] {
			// Pins are forced, not argmaxes; just advance the oracle state.
			retained[v] = true
			cur = cover.Evaluate(g, variant, retained)
			continue
		}
		bestGain := math.Inf(-1)
		for u := int32(0); u < int32(n); u++ {
			if retained[u] {
				continue
			}
			retained[u] = true
			gain := cover.Evaluate(g, variant, retained) - cur
			retained[u] = false
			if gain > bestGain {
				bestGain = gain
			}
		}
		retained[v] = true
		next := cover.Evaluate(g, variant, retained)
		if gain := next - cur; gain < bestGain-tol {
			t.Fatalf("%s/%s step %d: solver picked %d with oracle gain %g, oracle max is %g",
				gname, sname, step, v, gain, bestGain)
		}
		cur = next
	}
	if math.Abs(cur-sol.Cover) > tol {
		t.Fatalf("%s/%s: final oracle cover %g != solver cover %g", gname, sname, cur, sol.Cover)
	}
}
