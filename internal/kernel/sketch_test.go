package kernel_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/kernel"
)

// TestSketchBoundAdmissible is the sketch's load-bearing property: at every
// retained-set state, Bound(v) dominates the exact gain, and the
// overestimate stays within the certified ErrBound (plus the documented
// defensive float inflation).
func TestSketchBoundAdmissible(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		rng := rand.New(rand.NewSource(0x5ce ^ int64(variant)))
		for trial := 0; trial < 25; trial++ {
			n := 10 + rng.Intn(120)
			g := graphtest.Random(rng, n, 1+rng.Intn(10), variant)
			top := 1 + rng.Intn(6)
			sk, err := kernel.BuildSketch(nil, g, variant, top)
			if err != nil {
				t.Fatal(err)
			}
			st := kernel.NewState(g, variant)
			adds := graphtest.RandomSet(rng, g, 1+rng.Intn(n))
			for step := 0; step <= len(adds); step++ {
				if step > 0 {
					st.Add(adds[step-1])
				}
				for v := int32(0); v < int32(n); v++ {
					exact := st.Gain(v)
					bound := sk.Bound(st, v)
					if bound < exact-1e-15 {
						t.Fatalf("%v trial %d step %d: bound(%d)=%v below exact gain %v",
							variant, trial, step, v, bound, exact)
					}
					if !st.Retained(v) {
						slack := sk.ErrBound(v) + 2e-9*bound + 1e-12
						if bound-exact > slack {
							t.Fatalf("%v trial %d step %d: bound(%d)=%v overestimates exact %v beyond certified %v",
								variant, trial, step, v, bound, exact, slack)
						}
					}
				}
			}
			st.Release()
		}
	}
}

// TestSketchEncodeDecodeRoundTrip: the binary form reproduces the sketch
// bit-exactly, and a decoded sketch produces identical bounds.
func TestSketchEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(0xe0c))
	g := graphtest.Random(rng, 80, 7, graph.Independent)
	sk, err := kernel.BuildSketch(nil, g, graph.Independent, 3)
	if err != nil {
		t.Fatal(err)
	}
	blob := sk.Encode()
	back, err := kernel.DecodeSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk, back) {
		t.Fatal("decoded sketch differs from original")
	}
	if !bytes.Equal(blob, back.Encode()) {
		t.Fatal("re-encoding the decoded sketch changed the bytes")
	}
	st := kernel.NewState(g, graph.Independent)
	defer st.Release()
	st.Add(3)
	st.Add(17)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if sk.Bound(st, v) != back.Bound(st, v) {
			t.Fatalf("bound(%d) differs after round trip", v)
		}
	}
}

// TestDecodeSketchRejectsGarbage: structural validation fails cleanly on
// malformed inputs instead of yielding an unsound sketch.
func TestDecodeSketchRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbad))
	g := graphtest.Random(rng, 20, 4, graph.Normalized)
	sk, err := kernel.BuildSketch(nil, g, graph.Normalized, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := sk.Encode()
	cases := map[string][]byte{
		"empty":       nil,
		"truncated":   good[:len(good)/2],
		"bad-magic":   append([]byte("XXXX"), good[4:]...),
		"bad-version": append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"bad-variant": append(append([]byte{}, good[:5]...), append([]byte{7}, good[6:]...)...),
		"trailing":    append(append([]byte{}, good...), 0),
	}
	for name, blob := range cases {
		if _, err := kernel.DecodeSketch(blob); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

// TestSketchForCaches: the per-graph sketch is built once and shared.
func TestSketchForCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(0xcac))
	g := graphtest.Random(rng, 30, 4, graph.Independent)
	a, err := kernel.SketchFor(nil, g, graph.Independent)
	if err != nil {
		t.Fatal(err)
	}
	b, err := kernel.SketchFor(nil, g, graph.Independent)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("SketchFor rebuilt a cached sketch")
	}
	c, err := kernel.SketchFor(nil, g, graph.Normalized)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("SketchFor shared a sketch across variants")
	}
}

// FuzzSketchRoundTrip fuzzes the full sketch pipeline: generate a graph,
// build, encode, decode, then check the decoded sketch's bound against the
// exact gain (admissible, and within the certified error) across a replayed
// retained-set trajectory. The exact side is cover.Engine.Gain — the
// reference implementation — with the kernel state co-driven to keep the
// two in lockstep.
func FuzzSketchRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(4), uint8(2), false, uint8(3))
	f.Add(int64(7), uint8(100), uint8(9), uint8(1), true, uint8(40))
	f.Add(int64(42), uint8(250), uint8(12), uint8(7), false, uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, degRaw, topRaw uint8, normalized bool, addsRaw uint8) {
		n := 2 + int(nRaw)
		maxDeg := int(degRaw) % 12
		top := 1 + int(topRaw)%8
		variant := graph.Independent
		if normalized {
			variant = graph.Normalized
		}
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, n, maxDeg, variant)

		sk, err := kernel.BuildSketch(nil, g, variant, top)
		if err != nil {
			t.Fatal(err)
		}
		back, err := kernel.DecodeSketch(sk.Encode())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !reflect.DeepEqual(sk, back) {
			t.Fatal("decoded sketch differs from original")
		}

		eng := cover.NewEngine(g, variant)
		st := kernel.NewState(g, variant)
		defer st.Release()
		adds := graphtest.RandomSet(rng, g, int(addsRaw)%n)
		for step := 0; step <= len(adds); step++ {
			if step > 0 {
				eng.Add(adds[step-1])
				st.Add(adds[step-1])
			}
			for v := int32(0); v < int32(n); v++ {
				exact := eng.Gain(v)
				if kexact := st.Gain(v); kexact != exact {
					t.Fatalf("step %d: kernel gain(%d)=%v != engine %v", step, v, kexact, exact)
				}
				bound := back.Bound(st, v)
				if bound < exact-1e-15 {
					t.Fatalf("step %d: bound(%d)=%v below exact gain %v", step, v, bound, exact)
				}
				if !st.Retained(v) {
					if slack := back.ErrBound(v) + 2e-9*bound + 1e-12; bound-exact > slack {
						t.Fatalf("step %d: bound(%d)=%v overestimates exact %v beyond certified %v",
							step, v, bound, exact, slack)
					}
				}
			}
		}
	})
}
