package kernel

import (
	"context"
)

// entry is one lazy-heap candidate. The backing array is flat and pooled;
// sift operations move 24-byte values, never pointers, and no interface
// boxing occurs anywhere on the pick path.
type entry struct {
	// key is an admissible upper bound on the candidate's current marginal
	// gain; equal to the exact gain when exact is set and round is current.
	key float64
	v   int32
	// round is the |S| at which key was computed; -1 marks entries seeded
	// from the cached S = {} gain vector under a pinned set (stale from
	// birth, still admissible by submodularity).
	round int32
	// exact distinguishes a key that is the true gain at its round from a
	// sketch upper bound; only exact fresh keys may be selected.
	exact bool
}

// entryLess orders the max-heap by (key desc, id asc) — the same total
// order as the reference lazyHeap, so every kernel surfaces candidates
// identically and tie-breaks match the scan strategies.
func entryLess(a, b entry) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	return a.v < b.v
}

// siftDown restores the heap property below i. Manual and monomorphic: no
// heap.Interface indirection, no bounds checks beyond the slice's own.
func siftDown(h []entry, i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && entryLess(h[right], h[left]) {
			best = right
		}
		if !entryLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// heapify builds the heap in O(n) (Floyd's bottom-up construction).
func heapify(h []entry) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// Picker is the data-oriented CELF picker. With a nil sketch it is the
// flat-lazy strategy: stale tops are re-evaluated exactly, as in the
// reference lazyPicker, but on the flat heap and state. With a sketch,
// stale tops are first refreshed with the O(sketch) certified upper bound;
// the exact O(degree) Gain runs only when that bound still tops the heap —
// i.e. when the sketch cannot separate the leading candidates.
//
// Selection is byte-identical to every other strategy in both modes: keys
// are always admissible upper bounds, the heap order is (key desc, id asc),
// and a candidate is returned only when its key is its exact gain at the
// current round — so the argmax and its tie-break match the literal scan.
type Picker struct {
	ctx context.Context
	st  *State
	sk  *Sketch
	h   []entry

	// evals counts exact Gain evaluations (build + refreshes): the
	// solver-level work measure, diffed into Solution.GainEvals.
	evals int64
	// reevals counts stale-top refreshes of either kind (sketch bound or
	// exact), the heap-churn measure reported as ProgressEvent.Reevaluated.
	reevals int64

	// buildErr is set when the context fired during the heap build; the
	// first Pick surfaces it instead of a selection.
	buildErr error
}

// NewPicker builds the lazy heap for the state's current retained set.
// workers sizes the chunk-parallel gain evaluation on a cold build
// (<= 0 means GOMAXPROCS); sk == nil selects flat-lazy, otherwise the
// sketch-bounded picker. The heap storage comes from the state's pooled
// buffers, so construction allocates nothing in steady state.
//
// Builds are cold only once per (graph, variant): the S = {} gain vector is
// memoized, and later builds seed the heap from it — exact and fresh when
// nothing is pinned, stale-but-admissible bounds otherwise.
func NewPicker(ctx context.Context, st *State, workers int, sk *Sketch) *Picker {
	p := &Picker{ctx: ctx, st: st, sk: sk}
	n := st.g.NumNodes()
	entries := st.buf.entries[:0]
	round := int32(st.size)
	bg := cachedBaseGains(st.g, st.variant)
	if bg == nil {
		scratch := st.buf.scratch
		if err := parallelGains(ctx, st, scratch, workers); err != nil {
			p.buildErr = err
			return p
		}
		p.evals += int64(n - st.size)
		for v := int32(0); v < int32(n); v++ {
			if st.Retained(v) {
				continue
			}
			entries = append(entries, entry{key: scratch[v], v: v, round: round, exact: true})
		}
		heapify(entries)
		if st.size == 0 {
			gains := make([]float64, n)
			copy(gains, scratch)
			heap := make([]entry, len(entries))
			copy(heap, entries)
			storeBaseGains(st.g, st.variant, &baseGains{gains: gains, heap: heap})
		}
	} else if st.size == 0 {
		// Cache hit, nothing pinned: the memoized heap is exactly the heap
		// this build would produce (exact fresh gains at round 0), so the
		// whole construction is one copy into the pooled backing array.
		if err := ctxErr(ctx); err != nil {
			p.buildErr = err
			return p
		}
		entries = append(entries, bg.heap...)
	} else {
		// Cache hit under pins: zero gain evaluations, but retained nodes
		// must be excluded, so reseed from the gain vector — stale upper
		// bounds (round -1) the pick loop will refresh lazily.
		for v := int32(0); v < int32(n); v++ {
			if v%cancelCheckStride == 0 {
				if err := ctxErr(ctx); err != nil {
					p.buildErr = err
					return p
				}
			}
			if st.Retained(v) {
				continue
			}
			entries = append(entries, entry{key: bg.gains[v], v: v, round: -1, exact: true})
		}
		heapify(entries)
	}
	p.h = entries
	return p
}

// Evals returns the cumulative exact-gain evaluation count (build + picks).
func (p *Picker) Evals() int64 { return p.evals }

// Reevals returns the cumulative stale-top refresh count.
func (p *Picker) Reevals() int64 { return p.reevals }

// Pick returns the exact argmax candidate for the current round, with the
// next heap key as the admissible remaining-gain bound, mirroring the
// reference lazyPicker contract.
func (p *Picker) Pick() (v int32, gain, bound float64, ok bool, err error) {
	if p.buildErr != nil {
		return 0, 0, 0, false, p.buildErr
	}
	round := int32(p.st.size)
	for steps := 0; len(p.h) > 0; steps++ {
		if steps%cancelCheckStride == 0 {
			if err := ctxErr(p.ctx); err != nil {
				// Abandon the pick: refreshed keys already sifted back stay
				// admissible, so the selected prefix remains deterministic.
				return 0, 0, 0, false, err
			}
		}
		top := &p.h[0]
		switch {
		case top.round == round && top.exact:
			// True argmax: every other key is an admissible upper bound on
			// its own gain and sorts below this exact value.
			e := *top
			last := len(p.h) - 1
			p.h[0] = p.h[last]
			p.h = p.h[:last]
			if last > 0 {
				siftDown(p.h, 0)
			}
			bound := 0.0
			if len(p.h) > 0 {
				bound = p.h[0].key
			}
			return e.v, e.key, bound, true, nil
		case top.round != round:
			// Stale. Flat-lazy recomputes exactly; the sketch picker first
			// tries the O(sketch) bound — keys only tighten (min of two
			// admissible bounds is admissible), so candidates the bound can
			// separate never pay the O(degree) exact evaluation.
			if p.sk != nil {
				if b := p.sk.Bound(p.st, top.v); b < top.key {
					top.key = b
				}
				top.exact = false
			} else {
				top.key = p.st.Gain(top.v)
				top.exact = true
				p.evals++
			}
			top.round = round
			p.reevals++
			siftDown(p.h, 0)
		default:
			// Fresh sketch bound still tops the heap: the sketch cannot
			// separate the leading candidates, so fall back to exact.
			top.key = p.st.Gain(top.v)
			top.exact = true
			p.evals++
			p.reevals++
			siftDown(p.h, 0)
		}
	}
	return 0, 0, 0, false, nil
}
