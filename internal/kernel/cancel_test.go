package kernel_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
	"prefcover/internal/kernel"

	"math/rand"
)

// TestPickerBuildCancellation: a context canceled before the heap build
// must surface on the first Pick, for both the cold (chunk-parallel gain
// computation) and warm (memoized base gains) build paths, and for both
// kernel modes.
func TestPickerBuildCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(0xca0))
	g := graphtest.Random(rng, 500, 6, graph.Independent)
	sk, err := kernel.BuildSketch(nil, g, graph.Independent, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for pass := 0; pass < 2; pass++ {
		// Pass 0 hits the cold build (fresh graph, no cached base gains);
		// pass 1 warms the cache first so the canceled build exercises the
		// cache-hit path's polling loop.
		if pass == 1 {
			st := kernel.NewState(g, graph.Independent)
			if p := kernel.NewPicker(context.Background(), st, 4, nil); p == nil {
				t.Fatal("warm build failed")
			}
			st.Release()
		}
		for _, mode := range []*kernel.Sketch{nil, sk} {
			st := kernel.NewState(g, graph.Independent)
			p := kernel.NewPicker(ctx, st, 4, mode)
			if _, _, _, _, err := p.Pick(); !errors.Is(err, context.Canceled) {
				t.Fatalf("pass %d sketch=%v: Pick after canceled build: err = %v, want context.Canceled",
					pass, mode != nil, err)
			}
			st.Release()
		}
	}
}

// TestPickerMidPickCancellation: cancellation between picks is observed on
// the next Pick, and the selections made before it are exactly the prefix
// of the uncancelled deterministic order.
func TestPickerMidPickCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(0xca1))
	g := graphtest.Random(rng, 300, 5, graph.Normalized)
	full, err := greedy.Solve(g, greedy.Options{Variant: graph.Normalized, K: 40, Strategy: greedy.StrategyLazyFlat})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	st := kernel.NewState(g, graph.Normalized)
	defer st.Release()
	p := kernel.NewPicker(ctx, st, 1, nil)
	var picked []int32
	for i := 0; i < 10; i++ {
		v, _, _, ok, err := p.Pick()
		if err != nil || !ok {
			t.Fatalf("pick %d: ok=%v err=%v", i, ok, err)
		}
		st.Add(v)
		picked = append(picked, v)
	}
	cancel()
	if _, _, _, _, err := p.Pick(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Pick after cancel: err = %v, want context.Canceled", err)
	}
	for i, v := range picked {
		if v != full.Order[i] {
			t.Fatalf("canceled prefix diverges at %d: %d != %d", i, v, full.Order[i])
		}
	}
}

// TestChunkParallelCancelUnderRace cancels the context concurrently while
// chunk-parallel workers are scanning gains. Run under -race this checks
// the build's only shared mutable state (the cancellation flag and the
// disjoint gain stripes) is coordinated correctly; the build either
// completes or reports context.Canceled, and a completed build still
// yields the deterministic selection.
func TestChunkParallelCancelUnderRace(t *testing.T) {
	rng := rand.New(rand.NewSource(0xca2))
	for trial := 0; trial < 8; trial++ {
		g := graphtest.Random(rng, 2000, 8, graph.Independent)
		want, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel() // races with the workers' stride polls, by design
		}()
		st := kernel.NewState(g, graph.Independent)
		p := kernel.NewPicker(ctx, st, 8, nil)
		v, _, _, ok, err := p.Pick()
		wg.Wait()
		switch {
		case err != nil:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
			}
		case !ok:
			t.Fatalf("trial %d: no selection and no error", trial)
		case v != want.Order[0]:
			t.Fatalf("trial %d: survived cancellation but picked %d, want %d", trial, v, want.Order[0])
		}
		st.Release()
		cancel()
	}
}
