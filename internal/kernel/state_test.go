package kernel_test

import (
	"math"
	"math/rand"
	"testing"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/kernel"
)

// TestStateMatchesEngineBitwise co-drives a kernel.State and the reference
// cover.Engine through identical random add sequences and demands bitwise
// equality of every observable at every step — the arithmetic contract the
// differential solver suites build on.
func TestStateMatchesEngineBitwise(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		rng := rand.New(rand.NewSource(0x57a7e ^ int64(variant)))
		for trial := 0; trial < 30; trial++ {
			n := 8 + rng.Intn(120)
			g := graphtest.Random(rng, n, 1+rng.Intn(9), variant)
			eng := cover.NewEngine(g, variant)
			st := kernel.NewState(g, variant)
			adds := graphtest.RandomSet(rng, g, 1+rng.Intn(n))
			for step := -1; step < len(adds); step++ {
				if step >= 0 {
					v := adds[step]
					de := eng.Add(v)
					dk := st.Add(v)
					if de != dk {
						t.Fatalf("%v trial %d step %d: Add delta %v != %v", variant, trial, step, dk, de)
					}
					// Re-adding must be a no-op in both.
					if eng.Add(v) != 0 || st.Add(v) != 0 {
						t.Fatalf("%v trial %d step %d: re-add not a no-op", variant, trial, step)
					}
				}
				if eng.Cover() != st.Cover() || eng.Size() != st.Size() {
					t.Fatalf("%v trial %d step %d: cover/size diverge: (%v,%d) != (%v,%d)",
						variant, trial, step, st.Cover(), st.Size(), eng.Cover(), eng.Size())
				}
				for v := int32(0); v < int32(n); v++ {
					if eng.Retained(v) != st.Retained(v) {
						t.Fatalf("%v trial %d step %d: retained[%d] diverges", variant, trial, step, v)
					}
					if eng.Gain(v) != st.Gain(v) {
						t.Fatalf("%v trial %d step %d: gain[%d] %v != %v",
							variant, trial, step, v, st.Gain(v), eng.Gain(v))
					}
					if eng.CoveredWeight(v) != st.CoveredWeight(v) {
						t.Fatalf("%v trial %d step %d: I[%d] %v != %v",
							variant, trial, step, v, st.CoveredWeight(v), eng.CoveredWeight(v))
					}
					if eng.ItemCoverage(v) != st.ItemCoverage(v) {
						t.Fatalf("%v trial %d step %d: coverage[%d] %v != %v",
							variant, trial, step, v, st.ItemCoverage(v), eng.ItemCoverage(v))
					}
				}
			}
			st.Release()
		}
	}
}

// TestStatePoolReuse checks that pooled storage comes back clean: a state
// acquired after a released, dirtied one starts from S = {}.
func TestStatePoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graphtest.Random(rng, 64, 4, graph.Independent)
	st := kernel.NewState(g, graph.Independent)
	for _, v := range graphtest.RandomSet(rng, g, 20) {
		st.Add(v)
	}
	st.Release()

	st2 := kernel.NewState(g, graph.Normalized) // different variant, same size class
	defer st2.Release()
	if st2.Size() != 0 || st2.Cover() != 0 {
		t.Fatalf("reused state not clean: size %d cover %v", st2.Size(), st2.Cover())
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if st2.Retained(v) {
			t.Fatalf("reused state retains node %d", v)
		}
		if st2.CoveredWeight(v) != 0 {
			t.Fatalf("reused state has I[%d] = %v", v, st2.CoveredWeight(v))
		}
	}
	eng := cover.NewEngine(g, graph.Normalized)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if eng.Gain(v) != st2.Gain(v) {
			t.Fatalf("reused state gain[%d] %v != engine %v", v, st2.Gain(v), eng.Gain(v))
		}
	}
}

// TestItemCoverageGuards is the boundary table for the NaN/Inf coverage
// clamp, run against both the reference engine and the flat state (they
// share the clamp helper, and both must agree).
func TestItemCoverageGuards(t *testing.T) {
	for _, tc := range []struct {
		name string
		cov  float64
		want float64
	}{
		{"in-range", 0.75, 0.75},
		{"exact-one", 1.0, 1.0},
		{"exact-zero", 0.0, 0.0},
		{"float-noise-above-one", 1.0000000001, 1},
		{"plus-inf", math.Inf(1), 1},
		{"negative-noise", -1e-18, 0},
		{"minus-inf", math.Inf(-1), 0},
		{"nan", math.NaN(), 0},
	} {
		if got := cover.ClampCoverage(tc.cov); got != tc.want {
			t.Errorf("ClampCoverage(%s = %v) = %v, want %v", tc.name, tc.cov, got, tc.want)
		}
	}
}

// TestItemCoverageBoundaryBothVariants builds graphs whose weights push the
// coverage ratio to the clamp boundaries — a denormal-weight node whose
// ratio overflows to +Inf, and a NaN-weight node that poisons I — and
// checks both variants of both engines report clamped values, never NaN or
// a value outside [0,1].
func TestItemCoverageBoundaryBothVariants(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		// Node 0: denormal weight, fully coverable by node 1 — covered/weight
		// can overflow. Node 2: NaN weight propagates NaN into I[2] when
		// node 1 is added. Node 1: the retained coverer.
		b := graph.NewBuilder(3, 2)
		b.AddNode(5e-324)
		b.AddNode(0.5)
		b.AddNode(math.NaN())
		b.AddEdge(0, 1, 1.0)
		b.AddEdge(2, 1, 1.0)
		g, err := b.Build(graph.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eng := cover.NewEngine(g, variant)
		st := kernel.NewState(g, variant)
		eng.Add(1)
		st.Add(1)
		for v := int32(0); v < 3; v++ {
			ce := eng.ItemCoverage(v)
			ck := st.ItemCoverage(v)
			if math.IsNaN(ce) || ce < 0 || ce > 1 {
				t.Errorf("%v: engine ItemCoverage(%d) = %v escaped the clamp", variant, v, ce)
			}
			if ce != ck && !(math.IsNaN(ce) && math.IsNaN(ck)) {
				t.Errorf("%v: ItemCoverage(%d) engine %v != kernel %v", variant, v, ce, ck)
			}
		}
		st.Release()
	}
}
