package kernel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// cancelCheckStride mirrors the greedy package's poll cadence: one context
// poll per this many candidates bounds cancellation latency without
// measurable overhead in the scan loops.
const cancelCheckStride = 2048

// ctxErr is a non-blocking poll of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// parallelGains fills gains[v] = st.Gain(v) for every node, chunking the
// node space into contiguous stripes across workers (the parallelPicker
// stripe design, applied to the flat state). workers <= 1 or a single-core
// GOMAXPROCS runs inline with no goroutines. Gain is read-only on the
// state, and each worker writes a disjoint stripe of gains, so the only
// synchronization is the final WaitGroup join.
//
// On cancellation the partially filled gains are meaningless and an error
// is returned; deterministic values otherwise (each entry depends only on
// the immutable graph and current state, not on scheduling).
func parallelGains(ctx context.Context, st *State, gains []float64, workers int) error {
	n := len(gains)
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			if v%cancelCheckStride == 0 {
				if err := ctxErr(ctx); err != nil {
					return err
				}
			}
			gains[v] = st.Gain(int32(v))
		}
		return nil
	}
	var canceled atomic.Bool
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				if (v-lo)%cancelCheckStride == 0 {
					if ctxErr(ctx) != nil || canceled.Load() {
						canceled.Store(true)
						return
					}
				}
				gains[v] = st.Gain(int32(v))
			}
		}(lo, hi)
	}
	wg.Wait()
	if canceled.Load() {
		return ctx.Err()
	}
	return nil
}
