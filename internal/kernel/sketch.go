package kernel

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"prefcover/internal/graph"
)

// DefaultSketchTop is the per-node top-contributor list length used by the
// cached sketches. 12 entries keep a sketch lookup within two cache lines
// per node while covering the heavy head of real degree distributions.
const DefaultSketchTop = 12

// boundSlack is the defensive relative inflation applied by Sketch.Bound.
// In real arithmetic the sketch bound dominates the exact gain by
// construction, but the two are summed in different orders (top list +
// residual vs CSR edge order), so their floating-point roundings can differ
// by a few ulps; inflating by ~4000 ulps guarantees the computed bound also
// dominates the computed exact gain for any realistic degree, at a
// tightness cost far below the quantization slack already present.
const boundSlack = 1e-9

// sumSlack inflates the residual/error accumulators so they dominate the
// true (real-arithmetic) sums despite summation rounding.
const sumSlack = 1e-12

// Sketch is a succinct per-node coverage-contribution summary: for each
// node, the top contributing in-edges quantized to float32 (rounded up) and
// a residual upper-bounding everything dropped. Bound(v) evaluates an
// admissible upper bound on Gain(v) in O(top) instead of O(degree), with a
// certified per-node overestimate cap ErrBound(v). Sketches depend only on
// the immutable graph and variant, are built once and cached, and are safe
// for concurrent readers.
type Sketch struct {
	variant graph.Variant
	top     int

	// Top-contributor CSR: the kept in-edges of v are
	// (src[i], qw[i]) for i in [start[v], start[v+1]), in ascending source
	// order; qw >= the true edge weight (float32 rounded up).
	start []int32
	src   []int32
	qw    []float32

	// residual[v] upper-bounds the total contribution of v's dropped
	// in-edges at any retained set: sum over dropped edges of W(u,v)*W(u).
	residual []float64
	// errBound[v] is the certified cap on Bound(v) - Gain(v) in real
	// arithmetic: residual plus the quantization slack of the kept entries.
	// Bound's defensive float inflation adds at most |bound|*boundSlack on
	// top of this.
	errBound []float64
}

// sketchCache memoizes one sketch per (graph, variant).
var sketchCache = newGraphCache(4)

// SketchFor returns the cached sketch for (g, variant), building it with
// DefaultSketchTop on first use. The build is O(E log D) and polls ctx.
func SketchFor(ctx context.Context, g *graph.Graph, variant graph.Variant) (*Sketch, error) {
	k := baseKey{g, variant}
	if v, ok := sketchCache.get(k); ok {
		return v.(*Sketch), nil
	}
	sk, err := BuildSketch(ctx, g, variant, DefaultSketchTop)
	if err != nil {
		return nil, err
	}
	sketchCache.put(k, sk)
	return sk, nil
}

// BuildSketch constructs a sketch keeping at most top in-edges per node.
// Self-loops are excluded: the exact gain's own-weight term already
// accounts for them, so keeping them would only loosen the bound.
func BuildSketch(ctx context.Context, g *graph.Graph, variant graph.Variant, top int) (*Sketch, error) {
	if top < 1 {
		return nil, fmt.Errorf("kernel: sketch top %d < 1", top)
	}
	n := g.NumNodes()
	sk := &Sketch{
		variant:  variant,
		top:      top,
		start:    make([]int32, n+1),
		residual: make([]float64, n),
		errBound: make([]float64, n),
	}
	// A loose upper bound on kept entries to size the arrays once.
	keep := g.NumEdges()
	if limit := n * top; keep > limit {
		keep = limit
	}
	sk.src = make([]int32, 0, keep)
	sk.qw = make([]float32, 0, keep)

	type cand struct {
		idx int // position within the node's in-edge list, for stable order
		src int32
		w   float64
		c   float64 // static contribution bound W(u,v)*W(u)
	}
	var cands []cand
	for v := int32(0); v < int32(n); v++ {
		if v%1024 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		srcs, ws := g.InEdges(v)
		cands = cands[:0]
		for i, u := range srcs {
			if u == v {
				continue
			}
			cands = append(cands, cand{idx: i, src: u, w: ws[i], c: ws[i] * g.NodeWeight(u)})
		}
		if len(cands) > top {
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].c != cands[j].c {
					return cands[i].c > cands[j].c
				}
				return cands[i].idx < cands[j].idx
			})
			var dropped float64
			for _, cd := range cands[top:] {
				dropped += cd.c
			}
			sk.residual[v] = dropped * (1 + sumSlack)
			cands = cands[:top]
			// Restore edge order for the kept entries: deterministic layout
			// and sequential source access in Bound.
			sort.Slice(cands, func(i, j int) bool { return cands[i].idx < cands[j].idx })
		}
		var qslack float64
		for _, cd := range cands {
			q := roundUp32(cd.w)
			sk.src = append(sk.src, cd.src)
			sk.qw = append(sk.qw, q)
			qslack += (float64(q) - cd.w) * g.NodeWeight(cd.src)
		}
		sk.errBound[v] = (sk.residual[v] + qslack) * (1 + sumSlack)
		sk.start[v+1] = int32(len(sk.src))
	}
	return sk, nil
}

// roundUp32 converts w to the smallest float32 whose float64 value is >= w.
func roundUp32(w float64) float32 {
	f := float32(w)
	if float64(f) < w {
		f = math.Nextafter32(f, float32(math.Inf(1)))
	}
	return f
}

// Top returns the per-node list-length cap the sketch was built with.
func (sk *Sketch) Top() int { return sk.top }

// Variant returns the variant the sketch was built for.
func (sk *Sketch) Variant() graph.Variant { return sk.variant }

// NumNodes returns the number of nodes the sketch covers.
func (sk *Sketch) NumNodes() int { return len(sk.residual) }

// Bound returns an admissible upper bound on st.Gain(v) in O(top): the
// own-weight term plus the kept quantized contributions against the live
// coverage state, plus the residual for everything dropped.
func (sk *Sketch) Bound(st *State, v int32) float64 {
	lo, hi := sk.start[v], sk.start[v+1]
	b := st.nodeW[v] - st.covered[v]
	if sk.variant == graph.Normalized {
		liveW := st.liveW
		for i := lo; i < hi; i++ {
			b += float64(sk.qw[i]) * liveW[sk.src[i]]
		}
	} else {
		nodeW, covered := st.nodeW, st.covered
		for i := lo; i < hi; i++ {
			u := sk.src[i]
			b += float64(sk.qw[i]) * (nodeW[u] - covered[u])
		}
	}
	b += sk.residual[v]
	// Defensive inflation away from zero in either sign, so summation-order
	// rounding can never push the computed bound below the computed gain.
	return b + math.Abs(b)*boundSlack
}

// ErrBound returns the certified cap on the real-arithmetic overestimate
// Bound(v) - Gain(v): the residual plus quantization slack. The float-level
// defensive inflation adds at most |Bound(v)|*1e-9 on top.
func (sk *Sketch) ErrBound(v int32) float64 { return sk.errBound[v] }

// sketchMagic identifies the serialized sketch format.
var sketchMagic = [4]byte{'P', 'C', 'S', 'K'}

const sketchVersion = 1

// Encode serializes the sketch to a self-describing little-endian binary
// form. Float values round-trip bit-exactly through Decode.
func (sk *Sketch) Encode() []byte {
	n := len(sk.residual)
	m := len(sk.src)
	size := 4 + 1 + 1 + 8 + 8 + 8 + 4*(n+1) + 4*m + 4*m + 8*n + 8*n
	buf := make([]byte, 0, size)
	buf = append(buf, sketchMagic[:]...)
	buf = append(buf, sketchVersion, byte(sk.variant))
	var u64 [8]byte
	put64 := func(x uint64) {
		binary.LittleEndian.PutUint64(u64[:], x)
		buf = append(buf, u64[:]...)
	}
	put32 := func(x uint32) {
		binary.LittleEndian.PutUint32(u64[:4], x)
		buf = append(buf, u64[:4]...)
	}
	put64(uint64(sk.top))
	put64(uint64(n))
	put64(uint64(m))
	for _, x := range sk.start {
		put32(uint32(x))
	}
	for _, x := range sk.src {
		put32(uint32(x))
	}
	for _, x := range sk.qw {
		put32(math.Float32bits(x))
	}
	for _, x := range sk.residual {
		put64(math.Float64bits(x))
	}
	for _, x := range sk.errBound {
		put64(math.Float64bits(x))
	}
	return buf
}

// DecodeSketch parses an Encode result, validating structure so corrupt or
// truncated inputs fail cleanly rather than producing an unsound sketch.
func DecodeSketch(data []byte) (*Sketch, error) {
	if len(data) < 4+1+1+24 {
		return nil, fmt.Errorf("kernel: sketch blob truncated at %d bytes", len(data))
	}
	if [4]byte(data[:4]) != sketchMagic {
		return nil, fmt.Errorf("kernel: bad sketch magic %q", data[:4])
	}
	if data[4] != sketchVersion {
		return nil, fmt.Errorf("kernel: unsupported sketch version %d", data[4])
	}
	variant := graph.Variant(data[5])
	if variant != graph.Independent && variant != graph.Normalized {
		return nil, fmt.Errorf("kernel: unknown sketch variant %d", data[5])
	}
	p := data[6:]
	get64 := func() uint64 {
		x := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return x
	}
	top := get64()
	n := get64()
	m := get64()
	const maxDim = 1 << 31
	if top < 1 || top > maxDim || n > maxDim || m > maxDim {
		return nil, fmt.Errorf("kernel: sketch dims out of range (top=%d n=%d m=%d)", top, n, m)
	}
	need := 4*(int(n)+1) + 4*int(m) + 4*int(m) + 8*int(n) + 8*int(n)
	if len(p) != need {
		return nil, fmt.Errorf("kernel: sketch payload is %d bytes, want %d", len(p), need)
	}
	sk := &Sketch{
		variant:  variant,
		top:      int(top),
		start:    make([]int32, n+1),
		src:      make([]int32, m),
		qw:       make([]float32, m),
		residual: make([]float64, n),
		errBound: make([]float64, n),
	}
	get32 := func() uint32 {
		x := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return x
	}
	for i := range sk.start {
		sk.start[i] = int32(get32())
	}
	for i := range sk.src {
		sk.src[i] = int32(get32())
	}
	for i := range sk.qw {
		sk.qw[i] = math.Float32frombits(get32())
	}
	for i := range sk.residual {
		sk.residual[i] = math.Float64frombits(get64())
	}
	for i := range sk.errBound {
		sk.errBound[i] = math.Float64frombits(get64())
	}
	if sk.start[0] != 0 || int(sk.start[n]) != int(m) {
		return nil, fmt.Errorf("kernel: sketch offsets do not span the entry array")
	}
	for v := 0; v < int(n); v++ {
		if sk.start[v+1] < sk.start[v] || int(sk.start[v+1]-sk.start[v]) > sk.top {
			return nil, fmt.Errorf("kernel: node %d has invalid sketch extent", v)
		}
	}
	for i, s := range sk.src {
		if s < 0 || uint64(s) >= n {
			return nil, fmt.Errorf("kernel: sketch entry %d references node %d outside [0,%d)", i, s, n)
		}
	}
	return sk, nil
}
