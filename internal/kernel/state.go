// Package kernel is the data-oriented rewrite of the solver hot path: flat
// coverage state (a []uint64 retained bitset and cache-aligned I arrays),
// an allocation-free lazy heap pooled by graph size, chunk-parallel gain
// evaluation, and succinct per-node coverage sketches whose certified upper
// bounds let the lazy picker skip most exact Gain recomputations.
//
// Every kernel is numerically bit-identical to cover.Engine: the gain and
// add loops use textually identical floating-point expressions in the same
// order, with retained neighbors contributing exactly +0.0 instead of being
// skipped (retained u has I[u] == W(u) exactly, so the branch-free term is
// a true zero and IEEE addition of +0.0 leaves every sum unchanged). The
// differential suite in this package holds that property across strategies,
// variants, and pinned sets.
package kernel

import (
	"prefcover/internal/cover"
	"prefcover/internal/graph"
)

// State is the flat counterpart of cover.Engine: same semantics, pointer-
// free hot loops, pooled backing storage. Like the Engine, a State is not
// safe for concurrent mutation, but Gain is read-only and may be called
// from multiple goroutines between Add calls.
type State struct {
	g       *graph.Graph
	variant graph.Variant

	// Raw CSR views of the graph's reverse adjacency, hoisted out of the
	// Graph so the inner loops index flat arrays only.
	nodeW   []float64
	inStart []int64
	inSrc   []int32
	inW     []float64

	retained []uint64  // membership bitset, one bit per node
	covered  []float64 // the paper's I array, cache-aligned
	// liveW[u] is W(u) while u is outside S and exactly 0 afterwards; the
	// Normalized gain/add loops multiply by it instead of branching on the
	// retained bit, which keeps the inner loop free of unpredictable
	// branches without changing any rounded result.
	liveW []float64

	total float64 // C(S)
	size  int     // |S|

	buf *buffers // pooled backing storage; nil after Release
}

// NewState acquires pooled storage for g and returns a State with S = {}.
// Call Release when done to return the storage to the per-size pool.
func NewState(g *graph.Graph, variant graph.Variant) *State {
	n := g.NumNodes()
	buf := acquireBuffers(n)
	st := &State{
		g:        g,
		variant:  variant,
		nodeW:    g.NodeWeights(),
		retained: buf.retained,
		covered:  buf.covered,
		liveW:    buf.liveW,
		buf:      buf,
	}
	st.inStart, st.inSrc, st.inW = g.InCSR()
	copy(st.liveW, st.nodeW)
	return st
}

// Release returns the State's backing storage to the pool. The State must
// not be used afterwards.
func (s *State) Release() {
	if s.buf == nil {
		return
	}
	releaseBuffers(len(s.covered), s.buf)
	s.buf, s.retained, s.covered, s.liveW = nil, nil, nil, nil
}

// Graph returns the underlying graph.
func (s *State) Graph() *graph.Graph { return s.g }

// Variant returns the state's variant.
func (s *State) Variant() graph.Variant { return s.variant }

// Cover returns C(S) for the current retained set.
func (s *State) Cover() float64 { return s.total }

// Size returns |S|.
func (s *State) Size() int { return s.size }

// Retained reports whether v is in S.
func (s *State) Retained(v int32) bool {
	return s.retained[uint32(v)>>6]&(1<<(uint32(v)&63)) != 0
}

func (s *State) setRetained(v int32) {
	s.retained[uint32(v)>>6] |= 1 << (uint32(v) & 63)
}

// CoveredWeight returns I[v].
func (s *State) CoveredWeight(v int32) float64 { return s.covered[v] }

// ItemCoverage returns I[v]/W(v) with the same clamping as
// cover.Engine.ItemCoverage.
func (s *State) ItemCoverage(v int32) float64 {
	w := s.nodeW[v]
	if w == 0 {
		return 1
	}
	return cover.ClampCoverage(s.covered[v] / w)
}

// Gain returns the marginal gain of adding v to S. It computes the same
// IEEE result as cover.Engine.Gain: identical expressions in identical
// order, with retained in-neighbors contributing W(u)-I[u] == +0.0
// (Independent) or liveW[u] == 0 (Normalized) instead of a branch.
func (s *State) Gain(v int32) float64 {
	if s.Retained(v) {
		return 0
	}
	lo, hi := s.inStart[v], s.inStart[v+1]
	srcs := s.inSrc[lo:hi]
	ws := s.inW[lo:hi]
	g := s.nodeW[v] - s.covered[v]
	switch s.variant {
	case graph.Normalized:
		liveW := s.liveW
		for i, u := range srcs {
			if u == v {
				continue // self-loop: v covers itself fully via the first term
			}
			g += liveW[u] * ws[i]
		}
	default: // graph.Independent
		nodeW, covered := s.nodeW, s.covered
		for i, u := range srcs {
			if u == v {
				continue
			}
			g += ws[i] * (nodeW[u] - covered[u])
		}
	}
	return g
}

// Add commits v into S and returns the realized gain, bit-identical to
// cover.Engine.Add. The inner loops are fully branch-free: I[v] and
// liveW[v] are zeroed/satisfied before the scan, so self-loop and retained
// terms are exact +0.0 and both the per-neighbor update and the delta
// accumulation round identically to the Engine's skip-based loop.
func (s *State) Add(v int32) float64 {
	if s.Retained(v) {
		return 0
	}
	s.setRetained(v)
	s.size++
	delta := s.nodeW[v] - s.covered[v]
	s.covered[v] = s.nodeW[v]
	s.liveW[v] = 0
	lo, hi := s.inStart[v], s.inStart[v+1]
	srcs := s.inSrc[lo:hi]
	ws := s.inW[lo:hi]
	switch s.variant {
	case graph.Normalized:
		liveW, covered := s.liveW, s.covered
		for i, u := range srcs {
			d := liveW[u] * ws[i]
			covered[u] += d
			delta += d
		}
	default: // graph.Independent
		nodeW, covered := s.nodeW, s.covered
		for i, u := range srcs {
			d := ws[i] * (nodeW[u] - covered[u])
			covered[u] += d
			delta += d
		}
	}
	s.total += delta
	return delta
}
