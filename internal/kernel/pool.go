package kernel

import (
	"sync"
	"unsafe"

	"prefcover/internal/graph"
)

// buffers is the pooled backing storage for one State plus the picker heap
// that runs on top of it. Everything is sized once for a given node count
// and reused across solves, so the steady-state solver hot path performs no
// heap allocations proportional to the graph.
type buffers struct {
	covered  []float64
	liveW    []float64
	retained []uint64
	entries  []entry   // picker heap backing array, len 0, cap n
	scratch  []float64 // per-node gain staging for the chunk-parallel build
}

// bufPools maps a node count to a *sync.Pool of *buffers for that exact
// size. Solves against the same graph (the common serving pattern: one
// registry graph, many solve requests) hit the same pool entry.
var bufPools sync.Map

func poolFor(n int) *sync.Pool {
	if p, ok := bufPools.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := bufPools.LoadOrStore(n, &sync.Pool{New: func() interface{} {
		return &buffers{
			covered:  alignedFloats(n),
			liveW:    alignedFloats(n),
			retained: make([]uint64, (n+63)/64),
			entries:  make([]entry, 0, n),
			scratch:  make([]float64, n),
		}
	}})
	return p.(*sync.Pool)
}

// acquireBuffers returns zeroed storage for an n-node state.
func acquireBuffers(n int) *buffers {
	buf := poolFor(n).Get().(*buffers)
	clear(buf.covered)
	clear(buf.retained)
	buf.entries = buf.entries[:0]
	return buf
}

func releaseBuffers(n int, buf *buffers) {
	poolFor(n).Put(buf)
}

// cacheLine is the alignment target for the hot flat arrays. 64 bytes is
// the line size on every amd64/arm64 part this runs on.
const cacheLine = 64

// alignedFloats returns a length-n float64 slice whose first element sits
// on a cache-line boundary, so sequential scans of the covered/liveW arrays
// load whole lines and chunk-parallel workers touching adjacent stripes
// false-share at most one boundary line.
func alignedFloats(n int) []float64 {
	raw := make([]float64, n+cacheLine/8)
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(raw)))
	off := 0
	if rem := addr % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / 8)
	}
	return raw[off : off+n : off+n]
}

// baseKey identifies a cached per-graph artifact: graphs are immutable
// after Build, so identity plus variant fully determines base gains and
// sketches.
type baseKey struct {
	g       *graph.Graph
	variant graph.Variant
}

// graphCache is a tiny mutex-guarded LRU keyed by (graph, variant). Both
// the base-gain vectors and the sketches live in one of these; a handful of
// entries covers the serving pattern (few hot graphs, many solves) without
// pinning unbounded graph memory.
type graphCache struct {
	mu    sync.Mutex
	limit int
	vals  map[baseKey]interface{}
	order []baseKey // LRU order, oldest first
}

func newGraphCache(limit int) *graphCache {
	return &graphCache{limit: limit, vals: make(map[baseKey]interface{})}
}

func (c *graphCache) get(k baseKey) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[k]
	if ok {
		c.touch(k)
	}
	return v, ok
}

func (c *graphCache) put(k baseKey, v interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.vals[k]; !ok && len(c.order) >= c.limit {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.vals, oldest)
	}
	c.vals[k] = v
	c.touch(k)
}

func (c *graphCache) touch(k baseKey) {
	for i, key := range c.order {
		if key == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, k)
}

// baseGains is the memoized S = {} solve prefix for one (graph, variant):
// the exact empty-set gain vector and the already-heapified lazy heap built
// from it. By submodularity the gains are valid stale upper bounds for any
// retained set, so a cache hit seeds a lazy heap with zero gain
// evaluations — and with no pins the heap itself is reused verbatim,
// turning steady-state heap builds from O(E) gain evaluations plus an O(n)
// heapify into a single memcpy.
type baseGains struct {
	gains []float64
	heap  []entry // heapified, round 0, exact; callers must copy before mutating
}

var baseGainCache = newGraphCache(4)

// cachedBaseGains returns the memoized S = {} solve prefix, or nil on miss.
func cachedBaseGains(g *graph.Graph, variant graph.Variant) *baseGains {
	if v, ok := baseGainCache.get(baseKey{g, variant}); ok {
		return v.(*baseGains)
	}
	return nil
}

func storeBaseGains(g *graph.Graph, variant graph.Variant, bg *baseGains) {
	baseGainCache.put(baseKey{g, variant}, bg)
}
