package experiments

import (
	"fmt"
	"math/rand"

	"prefcover/internal/adapt"
	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/similarity"
	"prefcover/internal/synth"
)

func init() {
	register("ext-coldstart", ExtColdStart)
}

// ExtColdStart evaluates the footnote-4 direction: when a fraction of the
// catalog is new (no behavioral sessions yet), how much coverage does
// similarity-based edge augmentation recover? Three graphs are built from
// the same world — full knowledge (oracle), behavioral-only with the cold
// items' sessions removed, and the behavioral graph augmented from item
// texts — and each one's greedy selection is scored on the oracle graph.
func ExtColdStart(cfg Config) (*Table, error) {
	catSpec, sesSpec, err := synth.PresetSpecs(synth.YC, datasetScale(cfg, synth.YC), cfg.Seed)
	if err != nil {
		return nil, err
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		return nil, err
	}
	sessions, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		return nil, err
	}
	oracle, _, err := adapt.BuildGraph(sessions, adapt.Options{Variant: graph.Independent})
	if err != nil {
		return nil, err
	}
	// Item texts for every label the oracle graph knows.
	docs := make([]similarity.Doc, 0, cat.Len())
	for id := int32(0); id < int32(cat.Len()); id++ {
		docs = append(docs, similarity.Doc{Label: cat.Item(id).Label, Text: cat.ItemText(id)})
	}
	ix, err := similarity.BuildIndex(docs, similarity.IndexOptions{})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ext-coldstart",
		Title:   "Extension: similarity augmentation for cold-start items (YC, Independent)",
		Columns: []string{"cold fraction", "k", "total: behavioral / augmented / oracle", "cold demand: behavioral / augmented / oracle"},
		Notes: []string{
			"cold items keep their demand but lose their outgoing behavioral edges (as if newly listed); all selections scored on the full-knowledge graph",
			"the cold-demand columns isolate the coverage of the cold items' own requests — the mass augmentation targets",
			"expected shape: effects are real but small — losing cold items' out-edges costs a fraction of a point of total cover (the solver compensates by retaining more cold items directly), and augmentation closes part of that gap; Zipf demand means popular-item retention dominates either way",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 21))
	for _, coldFrac := range []float64{0.2, 0.4, 0.6} {
		cold := pickCold(rng, oracle, coldFrac)
		behavioral, err := stripOutEdges(oracle, cold)
		if err != nil {
			return nil, err
		}
		augmented, _, err := similarity.Augment(behavioral, ix, similarity.AugmentOptions{
			MinAlternatives: 1, PerItem: 3, Alpha: 0.4,
		})
		if err != nil {
			return nil, err
		}
		k := oracle.NumNodes() / 10
		if k < 1 {
			k = 1
		}
		scores := make(map[string][2]float64, 3)
		for name, solveOn := range map[string]*graph.Graph{
			"behavioral": behavioral, "augmented": augmented, "oracle": oracle,
		} {
			total, coldCover, err := solveAndScore(solveOn, oracle, k, cold)
			if err != nil {
				return nil, err
			}
			scores[name] = [2]float64{total, coldCover}
		}
		t.AddRow(
			fmt.Sprintf("%.1f", coldFrac), k,
			fmt.Sprintf("%.4f / %.4f / %.4f", scores["behavioral"][0], scores["augmented"][0], scores["oracle"][0]),
			fmt.Sprintf("%.4f / %.4f / %.4f", scores["behavioral"][1], scores["augmented"][1], scores["oracle"][1]),
		)
	}
	return t, nil
}

// pickCold selects the given fraction of items uniformly as "new".
func pickCold(rng *rand.Rand, g *graph.Graph, frac float64) map[int32]bool {
	n := g.NumNodes()
	count := int(frac * float64(n))
	cold := make(map[int32]bool, count)
	for _, idx := range rng.Perm(n)[:count] {
		cold[int32(idx)] = true
	}
	return cold
}

// stripOutEdges removes the outgoing edges of cold items: without observed
// sessions their alternatives are unknown. (Their incoming edges survive:
// other items' purchasers did click them.)
func stripOutEdges(g *graph.Graph, cold map[int32]bool) (*graph.Graph, error) {
	b := graph.NewBuilder(g.NumNodes(), g.NumEdges())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		b.AddLabeledNode(g.Label(v), g.NodeWeight(v))
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if cold[v] {
			continue
		}
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			b.AddEdge(v, u, ws[i])
		}
	}
	return b.Build(graph.BuildOptions{})
}

// solveAndScore runs greedy on solveOn and evaluates the selection on
// scoreOn (same label space by construction), returning the total cover
// and the cover restricted to the cold items' demand (normalized by the
// cold demand mass).
func solveAndScore(solveOn, scoreOn *graph.Graph, k int, cold map[int32]bool) (float64, float64, error) {
	sol, err := greedy.Solve(solveOn, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
	if err != nil {
		return 0, 0, err
	}
	set := make([]int32, 0, len(sol.Order))
	for _, v := range sol.Order {
		if u, ok := scoreOn.Lookup(solveOn.Label(v)); ok {
			set = append(set, u)
		}
	}
	total, err := cover.EvaluateSet(scoreOn, graph.Independent, set)
	if err != nil {
		return 0, 0, err
	}
	perItem, err := cover.PerItemCoverage(scoreOn, graph.Independent, set)
	if err != nil {
		return 0, 0, err
	}
	var coldCovered, coldMass float64
	for v := range cold {
		w := scoreOn.NodeWeight(v)
		coldMass += w
		coldCovered += w * perItem[v]
	}
	if coldMass == 0 {
		return total, 0, nil
	}
	return total, coldCovered / coldMass, nil
}
