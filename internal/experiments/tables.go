package experiments

import (
	"fmt"

	"prefcover/internal/adapt"
	"prefcover/internal/approx"
	"prefcover/internal/clickstream"
	"prefcover/internal/graph"
	"prefcover/internal/synth"
)

func init() {
	register("table1", Table1)
	register("table2", Table2)
}

// Table1 reproduces the paper's Table 1: greedy vs best-known VC_k/NPC_k
// approximation ratios per k/n range. The greedy column is computed from
// the implemented formula; the best-known column quotes the SDP/LP results
// from the literature (they have no scalable implementation — the point of
// the table).
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Approximation ratios of the greedy algorithm and best known polynomial algorithms for VC_k",
		Columns: []string{"k/n range", "greedy formula", "greedy @ range midpoint", "best known"},
		Notes: []string{
			"greedy column computed by internal/approx.GreedyRatioVC; best-known are literature constants (SDP/LP, not scalable)",
		},
	}
	for _, row := range approx.Table1() {
		t.AddRow(row.Range, row.Greedy, row.GreedyAt, row.BestKnown)
	}
	return t, nil
}

// datasetScale returns the preset scale factors used by the data-driven
// experiments: small defaults that keep runs in seconds, paper scale with
// cfg.Full.
func datasetScale(cfg Config, preset synth.Preset) float64 {
	if cfg.Full {
		return 1.0
	}
	if preset == synth.YC {
		return 0.02 // ~1K items, ~185K sessions (~5.2K purchases)
	}
	return 0.002 // ~3-4K items, ~16-22K sessions
}

// buildPreset generates a preset's clickstream and adapts it into a
// preference graph with the variant the preset's regime dictates.
func buildPreset(cfg Config, preset synth.Preset) (*graph.Graph, *adapt.Report, *clickstream.Store, graph.Variant, error) {
	catSpec, sesSpec, err := synth.PresetSpecs(preset, datasetScale(cfg, preset), cfg.Seed)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	sessions, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	variant := graph.Independent
	if sesSpec.Regime == synth.RegimeSingleAlternative {
		variant = graph.Normalized
	}
	g, rep, err := adapt.BuildGraph(sessions, adapt.Options{Variant: variant})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	sessions.Reset()
	return g, rep, sessions, variant, nil
}

// Table2 reproduces the paper's Table 2: per-dataset sessions, purchases,
// items and edges — here for the synthetic preset stand-ins.
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "The datasets used in the experiments (synthetic stand-ins)",
		Columns: []string{"DS", "sessions", "purchases", "items", "edges", "variant"},
	}
	for _, preset := range synth.Presets() {
		g, rep, _, variant, err := buildPreset(cfg, preset)
		if err != nil {
			return nil, fmt.Errorf("preset %s: %w", preset, err)
		}
		t.AddRow(string(preset), rep.Sessions, rep.PurchaseSessions, rep.Items, g.NumEdges(), variant.String())
	}
	scaleNote := "scale: default (PE/PF/PM x0.002, YC x0.02 of paper sizes); run with -full for paper scale"
	if cfg.Full {
		scaleNote = "scale: full paper sizes"
	}
	t.Notes = append(t.Notes,
		scaleNote,
		"expected shape: PE > PF > PM in size; YC small catalog with ~2.8% purchase rate; PM fits Normalized, others Independent",
	)
	return t, nil
}
