package experiments

import (
	"fmt"
	"sort"

	"prefcover/internal/adapt"
	"prefcover/internal/clickstream"
	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/sparsify"
	"prefcover/internal/synth"
)

func init() {
	register("ablation-lazy", AblationLazyVsScan)
	register("ablation-direction", AblationEdgeDirection)
	register("ablation-sparsify", AblationSparsify)
}

// AblationSparsify quantifies edge pruning as a preprocessing step: edges
// removed, certified worst-case cover loss (the LossBound), the actual
// cover loss of the greedy solution, and the solve-time change.
func AblationSparsify(cfg Config) (*Table, error) {
	n := 50_000
	if cfg.Full {
		n = 500_000
	}
	g, err := peGraph(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := n / 50
	base, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
	if err != nil {
		return nil, err
	}
	baseTime, err := timeIt(func() error {
		_, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k})
		return err
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-sparsify",
		Title:   fmt.Sprintf("Ablation: edge pruning before solving (n=%d, k=%d)", n, k),
		Columns: []string{"min weight", "edges kept", "certified max loss", "actual greedy loss", "scan time vs unpruned"},
		Notes: []string{
			fmt.Sprintf("unpruned: %d edges, scan %v, cover %.4f", g.NumEdges(), baseTime, base.Cover),
			"expected shape: actual loss far below the certified bound; time drops with the edge count",
		},
	}
	for _, tau := range []float64{0.05, 0.15, 0.3} {
		res, err := sparsify.Prune(g, sparsify.Options{MinWeight: tau})
		if err != nil {
			return nil, err
		}
		var sol *greedy.Solution
		elapsed, err := timeIt(func() error {
			var err error
			sol, err = greedy.Solve(res.Graph, greedy.Options{Variant: graph.Independent, K: k})
			return err
		})
		if err != nil {
			return nil, err
		}
		// Score the pruned solution on the ORIGINAL graph: what the
		// platform actually experiences.
		actual, err := cover.EvaluateSet(g, graph.Independent, sol.Order)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", tau),
			fmt.Sprintf("%d (%.0f%%)", res.EdgesAfter, 100*float64(res.EdgesAfter)/float64(res.EdgesBefore)),
			res.LossBound,
			base.Cover-actual,
			fmt.Sprintf("%v vs %v", elapsed, baseTime),
		)
	}
	return t, nil
}

// AblationLazyVsScan quantifies the lazy-evaluation design choice across
// budgets: identical covers, far fewer gain evaluations.
func AblationLazyVsScan(cfg Config) (*Table, error) {
	n := 50_000
	if cfg.Full {
		n = 500_000
	}
	g, err := peGraph(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-lazy",
		Title:   fmt.Sprintf("Ablation: lazy (CELF) vs scan vs stochastic greedy (n=%d)", n),
		Columns: []string{"k", "scan evals", "lazy evals", "stoch evals", "scan time", "lazy time", "lazy cover delta", "stoch cover ratio"},
		Notes: []string{
			"lazy evaluation is valid because both cover variants are monotone submodular; its selection is identical to scan by construction (tested)",
			"stochastic greedy (epsilon=0.1) is randomized: (1-1/e-eps) in expectation, O(n log 1/eps) total evals; the ratio column is its cover relative to scan",
		},
	}
	for _, k := range []int{100, 500, 2000} {
		scan, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k})
		if err != nil {
			return nil, err
		}
		var lazy *greedy.Solution
		st, err := timeIt(func() error {
			_, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k})
			return err
		})
		if err != nil {
			return nil, err
		}
		lt, err := timeIt(func() error {
			var err error
			lazy, err = greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
			return err
		})
		if err != nil {
			return nil, err
		}
		stoch, err := greedy.Solve(g, greedy.Options{
			Variant: graph.Independent, K: k, StochasticEpsilon: 0.1, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(k, scan.GainEvals, lazy.GainEvals, stoch.GainEvals,
			st.String(), lt.String(), abs(scan.Cover-lazy.Cover),
			fmt.Sprintf("%.4f", stoch.Cover/scan.Cover))
	}
	return t, nil
}

// AblationEdgeDirection compares the paper's purchased->clicked edge
// orientation against the naive clicked->purchased one (Section 5.2
// discusses why the former matches the model semantics). Quality metric:
// the cover the greedy solution achieves when scored under the
// purchased->clicked ground-truth graph.
func AblationEdgeDirection(cfg Config) (*Table, error) {
	catSpec, sesSpec, err := synth.PresetSpecs(synth.YC, datasetScale(cfg, synth.YC), cfg.Seed)
	if err != nil {
		return nil, err
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		return nil, err
	}
	sessions, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		return nil, err
	}
	forward, _, err := adapt.BuildGraph(sessions, adapt.Options{Variant: graph.Independent})
	if err != nil {
		return nil, err
	}
	sessions.Reset()
	reversedSessions, err := swapDirections(sessions)
	if err != nil {
		return nil, err
	}
	backward, _, err := adapt.BuildGraph(reversedSessions, adapt.Options{Variant: graph.Independent})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-direction",
		Title:   "Ablation: edge orientation in graph construction (YC, Independent)",
		Columns: []string{"k/n", "k", "purchased->clicked cover", "clicked->purchased cover"},
		Notes: []string{
			"both selections are scored on the purchased->clicked graph (the orientation the model semantics call for)",
			"expected shape: the paper's orientation dominates, most visibly at small k",
		},
	}
	n := forward.NumNodes()
	for _, frac := range []float64{0.1, 0.3, 0.5} {
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		fsol, err := greedy.Solve(forward, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
		if err != nil {
			return nil, err
		}
		bsol, err := greedy.Solve(backward, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
		if err != nil {
			return nil, err
		}
		// Map the backward graph's selection into the forward graph by
		// label and score it there.
		bset := make([]int32, 0, len(bsol.Order))
		for _, v := range bsol.Order {
			if fv, ok := forward.Lookup(backward.Label(v)); ok {
				bset = append(bset, fv)
			}
		}
		bCover, err := cover.EvaluateSet(forward, graph.Independent, bset)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", frac), k, fsol.Cover, bCover)
	}
	return t, nil
}

// swapDirections rewrites each purchase session so that the purchase and
// the first click trade places, yielding the clicked->purchased
// orientation when adapted.
func swapDirections(st *clickstream.Store) (*clickstream.Store, error) {
	out := clickstream.NewStore(make([]clickstream.Session, 0, st.Len()))
	for {
		s, err := st.Next()
		if err != nil {
			if err == clickstream.ErrEOF {
				break
			}
			return nil, err
		}
		cp := *s
		cp.Clicks = append([]string(nil), s.Clicks...)
		if cp.Purchase != "" && len(cp.Clicks) > 0 {
			cp.Purchase, cp.Clicks[0] = cp.Clicks[0], cp.Purchase
		}
		out.Append(cp)
	}
	sortStable(out)
	return out, nil
}

// sortStable keeps deterministic session order after the rewrite.
func sortStable(st *clickstream.Store) {
	s := st.Sessions()
	sort.SliceStable(s, func(i, j int) bool { return s[i].ID < s[j].ID })
}
