package experiments

import (
	"fmt"

	"prefcover/internal/baseline"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/synth"
)

func init() {
	register("fig4a", Fig4a)
	register("fig4b", Fig4b)
}

// smallInstance carves the brute-force-sized instance used by Figures
// 4a/4b: the paper reduces the YC dataset to its 30 most relevant
// products; we take the heaviest nodes of the YC-preset graph and
// renormalize.
func smallInstance(cfg Config) (*graph.Graph, error) {
	n := 20
	if cfg.Full {
		n = 30 // the paper's size; C(30,15) ~ 155M subsets, minutes of work
	}
	spec, err := synth.PresetGraphSpec(synth.YC, 0.02, cfg.Seed)
	if err != nil {
		return nil, err
	}
	spec.CommunitySize = n // keep the subset densely connected
	full, err := synth.GenerateGraph(spec)
	if err != nil {
		return nil, err
	}
	sub, _, err := full.Induce(full.TopNodesByWeight(n))
	if err != nil {
		return nil, err
	}
	return sub.Renormalize()
}

// fig4aKs returns the budget sweep for the small instance.
func fig4aKs(n int) []int {
	ks := []int{}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		ks = append(ks, k)
	}
	return ks
}

// Fig4a compares the coverage achieved by Greedy against the brute-force
// optimum (paper Figure 4a) on the small YC-derived instance, for both
// variants.
func Fig4a(cfg Config) (*Table, error) {
	g, err := smallInstance(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4a",
		Title:   "Coverage of Greedy vs BF (optimal) on a small YC subset",
		Columns: []string{"variant", "k", "greedy cover", "BF cover", "ratio"},
		Notes: []string{
			fmt.Sprintf("n=%d heaviest YC-preset items, renormalized; paper uses n=30 (our -full)", g.NumNodes()),
			"expected shape: ratio ~1.0 everywhere (greedy nearly optimal in practice), never below 1-1/e",
		},
	}
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		for _, k := range fig4aKs(g.NumNodes()) {
			sol, err := greedy.Solve(g, greedy.Options{Variant: variant, K: k})
			if err != nil {
				return nil, err
			}
			opt, _, err := baseline.BruteForce(g, variant, k, 500_000_000)
			if err != nil {
				return nil, err
			}
			ratio := 1.0
			if opt.Cover > 0 {
				ratio = sol.Cover / opt.Cover
			}
			t.AddRow(variant.String(), k, sol.Cover, opt.Cover, ratio)
		}
	}
	return t, nil
}

// Fig4b compares the running time of Greedy vs BF (paper Figure 4b,
// Normalized variant, log-scale in the paper) on the same instance.
func Fig4b(cfg Config) (*Table, error) {
	g, err := smallInstance(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4b",
		Title:   "Running time of Greedy vs BF (Normalized variant)",
		Columns: []string{"k", "greedy time", "BF time", "BF subsets", "speedup"},
		Notes: []string{
			"expected shape: BF grows combinatorially with k while greedy stays microseconds; the paper plots this gap in log scale",
		},
	}
	for _, k := range fig4aKs(g.NumNodes()) {
		var sol *greedy.Solution
		gt, err := timeIt(func() error {
			var err error
			sol, err = greedy.Solve(g, greedy.Options{Variant: graph.Normalized, K: k})
			return err
		})
		if err != nil {
			return nil, err
		}
		var stats *baseline.BruteForceStats
		bt, err := timeIt(func() error {
			var err error
			_, stats, err = baseline.BruteForce(g, graph.Normalized, k, 500_000_000)
			return err
		})
		if err != nil {
			return nil, err
		}
		speedup := float64(bt) / float64(gt)
		t.AddRow(k, gt, bt, stats.SubsetsEvaluated, fmt.Sprintf("%.0fx", speedup))
		_ = sol
	}
	return t, nil
}
