package experiments_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	. "prefcover/internal/experiments"
)

var smallCfg = Config{Seed: 42}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-direction", "ablation-lazy", "ablation-sparsify",
		"ext-budgeted", "ext-coldstart", "ext-dynamic", "ext-quota",
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
		"table1", "table2", "validation",
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("missing driver %s", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("s", 0.125)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "a note", "2.5000", "0.1250"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || lines[0] != "a,b" {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestTable1Driver(t *testing.T) {
	tab, err := Table1(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Greedy ratios must be nondecreasing down the table (k/n grows).
	prev := 0.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-9 {
			t.Errorf("ratio decreased: %v", tab.Rows)
		}
		prev = v
	}
}

func TestTable2Driver(t *testing.T) {
	tab, err := Table2(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 datasets", len(tab.Rows))
	}
	// Shape: PE > PF > PM item counts; YC has far fewer purchases than
	// sessions; PM is the normalized dataset.
	items := func(i int) int {
		v, err := strconv.Atoi(tab.Rows[i][3])
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(items(0) > items(1) && items(1) > items(2)) {
		t.Errorf("item counts not PE > PF > PM: %v", tab.Rows)
	}
	if tab.Rows[2][5] != "normalized" {
		t.Errorf("PM variant = %s", tab.Rows[2][5])
	}
	ycSessions, _ := strconv.Atoi(tab.Rows[3][1])
	ycPurchases, _ := strconv.Atoi(tab.Rows[3][2])
	if ycPurchases*10 > ycSessions {
		t.Errorf("YC purchase rate too high: %d/%d", ycPurchases, ycSessions)
	}
}

func TestFig4aDriverShape(t *testing.T) {
	tab, err := Fig4a(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 2 variants x 5 budgets
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy never exceeds the optimum and never drops below 1-1/e.
		if ratio < 0.632 || ratio > 1.0+1e-9 {
			t.Errorf("ratio %g out of [0.632, 1]: %v", ratio, row)
		}
	}
}

func TestFig4fDriverShape(t *testing.T) {
	tab, err := Fig4f(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 2 datasets x 5 thresholds
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevSize, prevDataset := 0, ""
	for _, row := range tab.Rows {
		gsize, _ := strconv.Atoi(row[2])
		kcsize, _ := strconv.Atoi(row[3])
		kwsize, _ := strconv.Atoi(row[4])
		// Greedy needs the smallest set at every threshold.
		if gsize > kcsize || gsize > kwsize {
			t.Errorf("greedy %d not smallest (kc=%d kw=%d)", gsize, kcsize, kwsize)
		}
		// Sizes grow with the threshold within a dataset.
		if row[0] != prevDataset {
			prevSize, prevDataset = 0, row[0]
		}
		if gsize < prevSize {
			t.Errorf("greedy size decreased: %v", tab.Rows)
		}
		prevSize = gsize
	}
}

func TestFig4cDriverShape(t *testing.T) {
	tab, err := Fig4c(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 { // 2 datasets x 5 budgets
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		greedy, _ := strconv.ParseFloat(row[3], 64)
		kc, _ := strconv.ParseFloat(row[4], 64)
		kw, _ := strconv.ParseFloat(row[5], 64)
		rd, _ := strconv.ParseFloat(row[6], 64)
		if greedy < kc-1e-9 || greedy < kw-1e-9 || greedy < rd-1e-9 {
			t.Errorf("greedy not dominant in row %v", row)
		}
	}
}

func TestExtBudgetedDriverShape(t *testing.T) {
	tab, err := ExtBudgeted(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	prevRevenue := 0.0
	for _, row := range tab.Rows {
		budget, _ := strconv.ParseFloat(row[0], 64)
		costUsed, _ := strconv.ParseFloat(row[2], 64)
		revenue, _ := strconv.ParseFloat(row[3], 64)
		if costUsed > budget+1e-9 {
			t.Errorf("cost %g exceeds budget %g", costUsed, budget)
		}
		if revenue < prevRevenue-1e-9 {
			t.Errorf("revenue decreased with a larger budget: %v", tab.Rows)
		}
		prevRevenue = revenue
	}
}

func TestExtDynamicDriverShape(t *testing.T) {
	tab, err := ExtDynamic(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		still, _ := strconv.ParseFloat(row[1], 64)
		repair, _ := strconv.ParseFloat(row[2], 64)
		if repair < still-1e-9 {
			t.Errorf("exchange maintenance below no-maintenance: %v", row)
		}
	}
}

func TestExtColdStartDriverShape(t *testing.T) {
	tab, err := ExtColdStart(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// "behavioral / augmented / oracle" triple: oracle must be the
		// best total cover.
		parts := strings.Split(row[2], " / ")
		if len(parts) != 3 {
			t.Fatalf("bad triple %q", row[2])
		}
		beh, _ := strconv.ParseFloat(parts[0], 64)
		oracle, _ := strconv.ParseFloat(parts[2], 64)
		if beh > oracle+1e-9 {
			t.Errorf("behavioral %g beats oracle %g", beh, oracle)
		}
	}
}

func TestValidationDriverShape(t *testing.T) {
	tab, err := Validation(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Errorf("simulation outside confidence band: %v", row)
		}
	}
}

func TestAblationSparsifyDriverShape(t *testing.T) {
	tab, err := AblationSparsify(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		bound, _ := strconv.ParseFloat(row[2], 64)
		actual, _ := strconv.ParseFloat(row[3], 64)
		if actual > bound+1e-9 {
			t.Errorf("actual loss %g exceeds certified bound %g", actual, bound)
		}
	}
}

func TestRunAllSmallIsRenderable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every driver; skipped in -short")
	}
	if raceEnabled {
		t.Skip("runs every driver; too slow under the race detector (each driver is race-tested individually)")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Seed: 7}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("output missing %s", id)
		}
	}
}
