package experiments

import (
	"fmt"
	"time"

	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/synth"
)

func init() {
	register("fig4d", Fig4d)
	register("fig4e", Fig4e)
}

// peGraph generates a PE-shaped graph with the given node count directly
// (simulating the tens of millions of sessions behind a million-item
// catalog would dominate the measurement; the solver only sees the graph).
func peGraph(n int, seed int64) (*graph.Graph, error) {
	spec, err := synth.PresetGraphSpec(synth.PE, 1, seed)
	if err != nil {
		return nil, err
	}
	spec.Nodes = n
	return synth.GenerateGraph(spec)
}

// Fig4d measures solver runtime as the item count grows at fixed k (paper
// Figure 4d: n in {10K, 100K, 500K, 1M}, k=5K, PE subsets). The scan
// strategy is the paper's literal algorithm; the lazy column is the
// submodularity-exploiting variant that returns the identical solution
// (ablation in DESIGN.md).
func Fig4d(cfg Config) (*Table, error) {
	ns := []int{10_000, 50_000, 100_000, 200_000}
	k := 2_000
	if cfg.Full {
		ns = []int{10_000, 100_000, 500_000, 1_000_000}
		k = 5_000
	}
	t := &Table{
		ID:      "fig4d",
		Title:   fmt.Sprintf("Scalability of Greedy: runtime vs n (PE-shaped graphs, k=%d)", k),
		Columns: []string{"n", "edges", "scan time", "lazy time", "scan evals", "lazy evals", "cover"},
		Notes: []string{
			"expected shape: scan time grows ~linearly in n at fixed k (O(nkD)); lazy orders of magnitude fewer gain evaluations, identical cover",
		},
	}
	for _, n := range ns {
		g, err := peGraph(n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		kk := k
		if kk > n {
			kk = n
		}
		var scan, lazy *greedy.Solution
		scanTime, err := timeIt(func() error {
			var err error
			scan, err = greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: kk, Workers: cfg.workers()})
			return err
		})
		if err != nil {
			return nil, err
		}
		lazyTime, err := timeIt(func() error {
			var err error
			lazy, err = greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: kk, Lazy: true})
			return err
		})
		if err != nil {
			return nil, err
		}
		if lazy.Cover != scan.Cover && abs(lazy.Cover-scan.Cover) > 1e-9 {
			return nil, fmt.Errorf("fig4d: lazy cover %g != scan cover %g at n=%d", lazy.Cover, scan.Cover, n)
		}
		t.AddRow(n, g.NumEdges(), scanTime, lazyTime, scan.GainEvals, lazy.GainEvals, scan.Cover)
	}
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig4e measures strong scaling of the parallel scan on a fixed graph
// (paper Figure 4e: 1..32 cores; the paper reports ~20x at 32 cores).
// On machines with fewer physical cores than the sweep the extra workers
// only demonstrate that the partitioned argmax does not change results or
// collapse throughput; EXPERIMENTS.md discusses this.
func Fig4e(cfg Config) (*Table, error) {
	n, k := 100_000, 500
	if cfg.Full {
		n, k = 1_000_000, 2_000
	}
	g, err := peGraph(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig4e",
		Title:   fmt.Sprintf("Parallelizability of Greedy (scan, n=%d, k=%d)", n, k),
		Columns: []string{"workers", "time", "speedup vs 1", "cover"},
		Notes: []string{
			"expected shape: near-linear speedup up to the physical core count (paper: 20x at 32 cores); beyond it, flat",
		},
	}
	var base time.Duration
	for _, workers := range []int{1, 4, 8, 16, 32} {
		var sol *greedy.Solution
		elapsed, err := timeIt(func() error {
			var err error
			sol, err = greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k, Workers: workers})
			return err
		})
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			base = elapsed
		}
		speedup := float64(base) / float64(elapsed)
		t.AddRow(workers, elapsed, fmt.Sprintf("%.2fx", speedup), sol.Cover)
	}
	return t, nil
}
