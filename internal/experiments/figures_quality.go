package experiments

import (
	"fmt"
	"math/rand"

	"prefcover/internal/baseline"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/synth"
)

func init() {
	register("fig4c", Fig4c)
	register("fig4f", Fig4f)
}

// Fig4c compares coverage quality of Greedy, TopK-W, TopK-C and Random
// (best of 10) on the YC dataset for k in {0.1n, ..., 0.9n} (paper Figure
// 4c, Independent variant). The paper reports "a similar trend" on the
// other datasets and omits them; the PM/Normalized rows reproduce one of
// those omitted series.
func Fig4c(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig4c",
		Title:   "Coverage quality of all competitors",
		Columns: []string{"dataset", "k/n", "k", "greedy", "topk-c", "topk-w", "random(best of 10)"},
		Notes: []string{
			"YC/Independent is the paper's plotted series; PM/Normalized is one of the series the paper reports as similar and omits",
			"expected shape: greedy dominates every baseline at every k, gaps widest at small k, all converging to 1.0 as k -> n",
			"topk-w vs topk-c order is data-dependent: on strongly clustered catalogs topk-c's overlap blindness (it stacks same-neighborhood hubs) costs it more than topk-w's alternative blindness",
		},
	}
	for _, preset := range []synth.Preset{synth.YC, synth.PM} {
		g, _, _, variant, err := buildPreset(cfg, preset)
		if err != nil {
			return nil, err
		}
		if err := fig4cRows(cfg, t, string(preset), g, variant); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func fig4cRows(cfg Config, t *Table, dataset string, g *graph.Graph, variant graph.Variant) error {
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(cfg.Seed + 100))
	// A single full-order greedy run yields every k prefix at once — the
	// incremental advantage the paper highlights.
	sol, err := greedy.Solve(g, greedy.Options{Variant: variant, K: n, Lazy: true, Workers: cfg.workers()})
	if err != nil {
		return err
	}
	prefix := sol.PrefixCover()
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		k := int(frac * float64(n))
		if k < 1 {
			k = 1
		}
		kw, err := baseline.TopKW(g, variant, k)
		if err != nil {
			return err
		}
		kc, err := baseline.TopKC(g, variant, k)
		if err != nil {
			return err
		}
		rd, err := baseline.BestRandom(g, variant, k, 10, rng)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%s/%s", dataset, variant), fmt.Sprintf("%.1f", frac), k, prefix[k], kc.Cover, kw.Cover, rd.Cover)
	}
	return nil
}

// Fig4f evaluates the complementary minimization problem: smallest set
// whose cover exceeds each threshold, Greedy vs the prefix-binary-search
// adaptations of TopK-W and TopK-C (paper Figure 4f, YC, Independent;
// plus the PM/Normalized series the paper reports as similar and omits).
func Fig4f(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig4f",
		Title:   "Complementary problem: retained-set size per coverage threshold",
		Columns: []string{"dataset", "threshold", "greedy size", "topk-c size", "topk-w size", "greedy cover"},
		Notes: []string{
			"expected shape: greedy needs the smallest set at every threshold; gaps widen with the threshold",
		},
	}
	for _, preset := range []synth.Preset{synth.YC, synth.PM} {
		g, _, _, variant, err := buildPreset(cfg, preset)
		if err != nil {
			return nil, err
		}
		// One greedy run to full coverage provides every threshold
		// directly (paper Section 3.2: no O(log n) binary-search
		// overhead).
		sol, err := greedy.Solve(g, greedy.Options{Variant: variant, K: g.NumNodes(), Lazy: true, Workers: cfg.workers()})
		if err != nil {
			return nil, err
		}
		prefix := sol.PrefixCover()
		for _, threshold := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			gsize := len(prefix) - 1
			gcover := prefix[len(prefix)-1]
			for size := 0; size < len(prefix); size++ {
				if prefix[size] >= threshold-graph.Eps {
					gsize, gcover = size, prefix[size]
					break
				}
			}
			kw, err := baseline.MinCoverTopKW(g, variant, threshold)
			if err != nil {
				return nil, err
			}
			kc, err := baseline.MinCoverTopKC(g, variant, threshold)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%s/%s", preset, variant), fmt.Sprintf("%.1f", threshold), gsize, kc.Size, kw.Size, gcover)
		}
	}
	return t, nil
}
