// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5.4) on synthetic stand-ins for the paper's datasets:
// one driver function per exhibit, each returning a rendered Table. The
// package is shared by cmd/experiments (human-readable runs) and the
// repository's top-level benchmarks.
//
// Absolute numbers differ from the paper (different data, hardware and
// implementation language); the experiment *shapes* are what must and do
// hold — see EXPERIMENTS.md for the side-by-side reading.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Config parameterizes all experiment drivers.
type Config struct {
	// Seed drives every random choice; same seed, same tables.
	Seed int64
	// Full switches to paper-scale workloads (millions of items). The
	// default small scale keeps every driver in seconds on a laptop.
	Full bool
	// Workers is the solver parallelism for drivers that do not sweep it.
	Workers int
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "table2", "fig4c"
	Title   string
	Columns []string
	Rows    [][]string
	// Notes explain scale substitutions and what shape to expect.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, col := range t.Columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, col)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (columns first).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Driver is an experiment entry point.
type Driver func(Config) (*Table, error)

// registry maps experiment ids to drivers, populated by the per-exhibit
// files in this package.
var registry = map[string]Driver{}

func register(id string, d Driver) { registry[id] = d }

// Lookup returns the driver for an experiment id.
func Lookup(id string) (Driver, bool) {
	d, ok := registry[id]
	return d, ok
}

// IDs lists all registered experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every registered experiment and renders each to w,
// stopping at the first failure.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range IDs() {
		d, _ := Lookup(id)
		tab, err := d(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
		if err := tab.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// timeIt measures one invocation of f.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
