package experiments

import (
	"fmt"

	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/replay"
	"prefcover/internal/synth"
)

func init() {
	register("validation", Validation)
}

// Validation backs the paper's claim that "both variants capture
// real-world consumer behavior" with a Monte Carlo check: simulate
// consumer requests under each variant's exact semantics against the
// solver's retained sets and compare the realized purchase rate with the
// analytic C(S).
func Validation(cfg Config) (*Table, error) {
	requests := 200_000
	if cfg.Full {
		requests = 5_000_000
	}
	t := &Table{
		ID:      "validation",
		Title:   "Model validation: analytic cover vs simulated purchase rate",
		Columns: []string{"variant", "k/n", "predicted C(S)", "simulated rate", "std err", "within 4 sigma"},
		Notes: []string{
			fmt.Sprintf("%d simulated requests per row; the simulator implements each variant's acceptance semantics independently of the solver", requests),
			"expected shape: every row within the confidence band — the analytic formulas of Definitions 2.1/2.2 are exact for their regimes",
		},
	}
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		spec, err := synth.PresetGraphSpec(synth.YC, 0.02, cfg.Seed)
		if err != nil {
			return nil, err
		}
		spec.Variant = variant
		g, err := synth.GenerateGraph(spec)
		if err != nil {
			return nil, err
		}
		n := g.NumNodes()
		sol, err := greedy.Solve(g, greedy.Options{Variant: variant, K: n, Lazy: true})
		if err != nil {
			return nil, err
		}
		prefix := sol.PrefixCover()
		for _, frac := range []float64{0.1, 0.3, 0.5} {
			k := int(frac * float64(n))
			if k < 1 {
				k = 1
			}
			est, err := replay.RunSet(g, sol.Order[:k], replay.Spec{
				Variant:  variant,
				Requests: requests,
				Seed:     cfg.Seed + int64(k),
			}, prefix[k])
			if err != nil {
				return nil, err
			}
			t.AddRow(variant.String(), fmt.Sprintf("%.1f", frac), est.Predicted, est.Rate, est.StdErr, est.Within(4))
		}
	}
	return t, nil
}
