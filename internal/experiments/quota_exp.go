package experiments

import (
	"fmt"

	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/quota"
)

func init() {
	register("ext-quota", ExtQuota)
}

// ExtQuota measures the coverage cost of per-group retention caps
// (supplier/category import quotas) as the caps tighten, against the
// unconstrained greedy ceiling. Groups are assigned by hashing item ids
// into 16 equal-share suppliers.
func ExtQuota(cfg Config) (*Table, error) {
	n := 5_000
	if cfg.Full {
		n = 100_000
	}
	g, err := peGraph(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	k := n / 10
	const suppliers = 16
	groups := make([]int32, n)
	for v := 0; v < n; v++ {
		groups[v] = int32((v*2654435761 + 12345) % suppliers)
	}
	free, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-quota",
		Title:   fmt.Sprintf("Extension: coverage cost of per-supplier caps (n=%d, k=%d, %d suppliers)", n, k, suppliers),
		Columns: []string{"cap (x fair share)", "cap", "retained", "cover", "cost vs unconstrained", "max supplier share"},
		Notes: []string{
			fmt.Sprintf("unconstrained greedy cover: %.4f; fair share is k/suppliers = %d", free.Cover, k/suppliers),
			"expected shape: generous caps cost ~nothing; caps at the fair share force redistribution and a visible but modest cover loss",
		},
	}
	for _, mult := range []float64{2.0, 1.5, 1.2, 1.0} {
		cap := int(mult * float64(k) / suppliers)
		if cap < 1 {
			cap = 1
		}
		caps := make([]int, suppliers)
		for i := range caps {
			caps[i] = cap
		}
		res, err := quota.Solve(g, quota.Spec{
			Variant:     graph.Independent,
			K:           k,
			Group:       groups,
			MaxPerGroup: caps,
		})
		if err != nil {
			return nil, err
		}
		maxShare := 0
		for _, c := range res.GroupCounts {
			if c > maxShare {
				maxShare = c
			}
		}
		t.AddRow(
			fmt.Sprintf("%.1fx", mult), cap, len(res.Order), res.Cover,
			fmt.Sprintf("-%.4f", free.Cover-res.Cover),
			maxShare,
		)
	}
	return t, nil
}
