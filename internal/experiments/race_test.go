//go:build race

package experiments_test

// raceEnabled reports whether the race detector is compiled in; the
// all-drivers test is skipped under it (instrumentation makes the full
// experiment sweep an order of magnitude slower, and the drivers are each
// covered individually above).
const raceEnabled = true
