//go:build !race

package experiments_test

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
