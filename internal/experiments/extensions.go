package experiments

import (
	"fmt"
	"math/rand"

	"prefcover/internal/budgeted"
	"prefcover/internal/dynamic"
	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/synth"
)

func init() {
	register("ext-budgeted", ExtBudgeted)
	register("ext-dynamic", ExtDynamic)
}

// ExtBudgeted evaluates the revenue/storage extension (the paper's stated
// future work): expected covered revenue under a storage budget, for the
// three candidate strategies and against the cost-blind greedy baseline.
func ExtBudgeted(cfg Config) (*Table, error) {
	n := 5_000
	if cfg.Full {
		n = 100_000
	}
	g, err := peGraph(n, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	revenue := make([]float64, n)
	cost := make([]float64, n)
	for v := 0; v < n; v++ {
		revenue[v] = 2 + 20*rng.Float64()
		cost[v] = 0.5 + 2*rng.Float64()
	}
	t := &Table{
		ID:      "ext-budgeted",
		Title:   fmt.Sprintf("Extension: revenue under a storage budget (n=%d)", n),
		Columns: []string{"budget", "items", "cost used", "revenue", "strategy", "cost-blind revenue", "cost-blind budget"},
		Notes: []string{
			"objective: expected covered revenue; 'cost-blind' runs plain greedy at the same cardinality and reports whether its plan even fits the budget",
			"expected shape: budgeted revenue grows with the budget; the cost-blind plan overshoots the budget substantially",
		},
	}
	for _, budget := range []float64{100, 250, 500, 1000} {
		res, err := budgeted.Solve(g, budgeted.Spec{
			Variant: graph.Independent,
			Revenue: revenue,
			Cost:    cost,
			Budget:  budget,
		})
		if err != nil {
			return nil, err
		}
		blind, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: maxInt(len(res.Order), 1), Lazy: true})
		if err != nil {
			return nil, err
		}
		var blindRevenue, blindCost float64
		for v := 0; v < n; v++ {
			blindRevenue += revenue[v] * g.NodeWeight(int32(v)) * blind.Coverage[v]
		}
		for _, v := range blind.Order {
			blindCost += cost[v]
		}
		fit := "fits"
		if blindCost > budget {
			fit = fmt.Sprintf("OVER %.0f%%", 100*(blindCost/budget-1))
		}
		t.AddRow(budget, len(res.Order), res.CostUsed, res.Revenue, res.Strategy, blindRevenue, fit)
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ExtDynamic evaluates incremental maintenance: a solved instance drifts
// over simulated rounds; compare (a) doing nothing, (b) one local exchange
// per round, (c) a fresh full solve each round (the quality ceiling), all
// measured on the drifted graph.
func ExtDynamic(cfg Config) (*Table, error) {
	n := 2_000
	if cfg.Full {
		n = 50_000
	}
	k := n / 20
	spec, err := synth.PresetGraphSpec(synth.PE, 1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	spec.Nodes = n
	g, err := synth.GenerateGraph(spec)
	if err != nil {
		return nil, err
	}
	base, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: k, Lazy: true})
	if err != nil {
		return nil, err
	}
	// Three trackers share the same edit script.
	mkTracker := func() (*dynamic.MutableGraph, *dynamic.Tracker, error) {
		m := dynamic.FromGraph(g)
		tr, err := dynamic.NewTracker(m, graph.Independent, base.Order)
		return m, tr, err
	}
	_, still, err := mkTracker()
	if err != nil {
		return nil, err
	}
	_, repair, err := mkTracker()
	if err != nil {
		return nil, err
	}
	_, fresh, err := mkTracker()
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ext-dynamic",
		Title:   fmt.Sprintf("Extension: incremental maintenance under demand drift (n=%d, k=%d)", n, k),
		Columns: []string{"round", "no maintenance", "1 exchange/round", "full re-solve", "exchange churn", "re-solve churn"},
		Notes: []string{
			"each round rescales 2% of item weights by 0.2-2x; covers are exact on the drifted graph; churn = retained items replaced this round",
			"expected shape: exchanges track (and, being local-search refinements of greedy, can even beat) the re-solve cover at a fraction of the assortment churn a re-solve inflicts",
		},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	edits := n / 50
	prevFresh := toSet(base.Order)
	for round := 1; round <= 8; round++ {
		// One shared edit script applied to all three trackers.
		for i := 0; i < edits; i++ {
			id := int32(rng.Intn(n))
			factor := 0.2 + 1.8*rng.Float64()
			cur, err := still.Weight(id)
			if err != nil {
				return nil, err
			}
			for _, tr := range []*dynamic.Tracker{still, repair, fresh} {
				if err := tr.SetWeight(id, cur*factor); err != nil {
					return nil, err
				}
			}
		}
		exchangeChurn := 0
		if ex, ok := repair.BestExchange(1e-9); ok {
			if err := repair.ApplyExchange(ex); err != nil {
				return nil, err
			}
			exchangeChurn = 1
		}
		res, err := fresh.Resolve(k, greedy.Options{Lazy: true})
		if err != nil {
			return nil, err
		}
		freshSet := toSet(res.RetainedIDs)
		resolveChurn := 0
		for id := range freshSet {
			if !prevFresh[id] {
				resolveChurn++
			}
		}
		prevFresh = freshSet
		t.AddRow(round, still.Cover(), repair.Cover(), fresh.Cover(), exchangeChurn, resolveChurn)
	}
	return t, nil
}

func toSet(ids []int32) map[int32]bool {
	out := make(map[int32]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}
