// Package solvecache caches greedy Preference Cover solutions for the
// serving layer, exploiting the property that makes the paper's greedy
// uniquely cacheable (§3.2, "Additional Advantages"): the solution is
// *ordered*, and the length-k' prefix of a budget-k solve IS the greedy
// solution for every budget k' ≤ k. One cached solve at the largest
// budget seen therefore answers every smaller-budget query in O(k')
// slicing — zero solver work — and, because the per-iteration cover
// values form a nondecreasing curve, answers threshold-mode (MinCover)
// queries by binary search over that curve. This is the same
// "precompute the permutation once, answer coverage queries cheaply"
// economics as succinct coverage oracles.
//
// Entries are keyed by (graph content hash, variant, pinned prefix,
// strategy): the hash comes from internal/store, so replacing a graph's
// content automatically orphans its results; pins change the selection
// (they are force-retained first) and so partition the cache; strategy is
// included because the stochastic strategy is seed-dependent even though
// the three deterministic strategies select identical sets.
//
// The cache is bounded (entries and approximate bytes) with LRU eviction,
// and Do coalesces concurrent identical misses singleflight-style so a
// thundering herd of the same solve runs the solver exactly once.
package solvecache

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prefcover/internal/graph"
	"prefcover/internal/greedy"
	"prefcover/internal/trace"
)

// Key identifies one cached solve lineage.
type Key struct {
	// GraphHash is the content hash from the graph registry.
	GraphHash string
	// Variant is the cover semantics.
	Variant graph.Variant
	// Pins is the canonical pinned-prefix encoding (PinsKey).
	Pins string
	// Strategy is the solver strategy label (greedy.Strategy*).
	Strategy string
}

// PinsKey canonicalizes a pinned-item list for Key.Pins. Order matters —
// pins are retained in the given order and occupy the front of the
// solution — so the encoding preserves it.
func PinsKey(pins []int32) string {
	if len(pins) == 0 {
		return ""
	}
	parts := make([]string, len(pins))
	for i, v := range pins {
		parts[i] = strconv.FormatInt(int64(v), 10)
	}
	return strings.Join(parts, ",")
}

// Query is the part of a solve request that selects a prefix rather than a
// lineage: the budget and/or threshold, exactly as greedy.Options takes
// them.
type Query struct {
	K         int
	Threshold float64
}

// Result is one cached solution: the full ordered greedy prefix at the
// largest budget solved so far, plus the cover curve that lets threshold
// queries binary-search their answer. Results are immutable once stored;
// Hit slices alias their arrays and must be treated as read-only.
type Result struct {
	// Order and Gains are the greedy selection (pins first).
	Order []int32
	Gains []float64
	// Curve[i] is C(Order[:i]) — len(Order)+1 nondecreasing values built
	// from the per-iteration gains, bitwise-equal to the solver's own
	// running cover (the engine accumulates the same deltas).
	Curve []float64
	// Coverage is the per-item coverage of the FULL order; only valid for
	// hits that consume the entire prefix.
	Coverage []float64
	// Reached is the original solve's threshold outcome.
	Reached bool
	// N is the graph's node count (so k > len(Order) can be served when
	// the order is exhaustive).
	N int
	// NumPins is the length of the forced prefix; no query can be served
	// with fewer items.
	NumPins int
}

// NewResult packages a successful solve for caching.
func NewResult(sol *greedy.Solution, n, numPins int) *Result {
	return &Result{
		Order:    sol.Order,
		Gains:    sol.Gains,
		Curve:    sol.PrefixCover(),
		Coverage: sol.Coverage,
		Reached:  sol.Reached,
		N:        n,
		NumPins:  numPins,
	}
}

// bytes approximates the entry's memory footprint for the LRU budget.
func (r *Result) bytes() int64 {
	return int64(4*len(r.Order) + 8*len(r.Gains) + 8*len(r.Curve) + 8*len(r.Coverage) + 96)
}

// Hit is a query answered from a cached result.
type Hit struct {
	// Order and Gains are the served prefix (aliases into the cached
	// result — read-only).
	Order []int32
	Gains []float64
	// Cover is C(Order).
	Cover float64
	// Reached mirrors greedy semantics: always true in pure budget mode,
	// threshold-met in threshold mode.
	Reached bool
	// Coverage is the per-item coverage, non-nil only when the hit
	// consumed the full cached prefix; shorter prefixes leave it nil for
	// the caller to recompute with the cover engine (linear in the graph,
	// still no solver work).
	Coverage []float64
}

// answer tries to serve q from r. The logic mirrors greedy.Solve exactly:
// budget mode picks min(K, n) items; threshold mode stops at the first
// prefix whose cover reaches Threshold - graph.Eps (never shorter than the
// pinned prefix), with K as a cap when both are set.
func (r *Result) answer(q Query) (*Hit, bool) {
	if q.K < 0 || q.Threshold < 0 || q.Threshold > 1 {
		return nil, false
	}
	if q.K == 0 && q.Threshold == 0 {
		return nil, false
	}
	if q.K > 0 && q.K < r.NumPins {
		// Fresh solve would reject (pins exceed K); never serve it.
		return nil, false
	}
	// limit is how many items the solver would pick at most: min(K, n),
	// with K == 0 meaning unbounded. Because limit is clamped to n, an
	// exhaustive cached order (len == n) serves any larger budget too.
	limit := r.N
	if q.K > 0 && q.K < limit {
		limit = q.K
	}
	var take int
	reached := true
	if q.Threshold > 0 {
		// Smallest prefix reaching the threshold: Curve is nondecreasing,
		// so binary search matches the solver's first-crossing stop.
		i := sort.SearchFloat64s(r.Curve, q.Threshold-graph.Eps)
		if i < r.NumPins {
			i = r.NumPins // the solver always retains every pin
		}
		switch {
		case i < len(r.Curve) && i <= limit:
			take = i
		case len(r.Order) >= limit:
			// Threshold unreachable within the cap; the solver stops at
			// the cap unreached.
			take, reached = limit, false
		default:
			// The cached prefix ends before the cap without reaching the
			// threshold — a fresh solve would keep going. Miss.
			return nil, false
		}
	} else {
		if limit > len(r.Order) {
			return nil, false // cached prefix shorter than the budget
		}
		take = limit
	}
	h := &Hit{
		Order:   r.Order[:take],
		Gains:   r.Gains[:take],
		Cover:   r.Curve[take],
		Reached: reached,
	}
	if take == len(r.Order) {
		h.Coverage = r.Coverage
	}
	return h, true
}

// Options bounds the cache.
type Options struct {
	// MaxEntries bounds the number of cached results (0 = DefaultMaxEntries).
	MaxEntries int
	// MaxBytes bounds the approximate retained bytes (0 = DefaultMaxBytes).
	MaxBytes int64
	// OnEvict, when non-nil, is called once per evicted entry (metrics).
	OnEvict func(key Key)
}

// Default bounds; a cached result is small (tens of KB for k in the
// thousands plus one float per node), so generous counts are cheap.
const (
	DefaultMaxEntries = 1024
	DefaultMaxBytes   = 1 << 30
)

// Status classifies how Do satisfied a request.
type Status int

const (
	// StatusMiss: this call ran the solver.
	StatusMiss Status = iota
	// StatusHit: served from a cached result, zero solver work.
	StatusHit
	// StatusCoalesced: an identical solve was already in flight; this call
	// waited for it instead of solving again.
	StatusCoalesced
)

func (s Status) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusCoalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Cache is the bounded, singleflight-coalescing result cache.
type Cache struct {
	opts Options

	mu      sync.Mutex
	entries map[Key]*Result
	byHash  map[string]map[Key]struct{}
	lruSeq  uint64
	lastUse map[Key]uint64
	bytes   int64

	inflight map[flightKey]*flight
}

// flightKey identifies one in-progress solve: the lineage plus the exact
// query, so different budgets for the same graph do not falsely coalesce.
type flightKey struct {
	key Key
	q   Query
}

type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// New returns an empty cache.
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = DefaultMaxEntries
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		opts:     opts,
		entries:  make(map[Key]*Result),
		byHash:   make(map[string]map[Key]struct{}),
		lastUse:  make(map[Key]uint64),
		inflight: make(map[flightKey]*flight),
	}
}

// Lookup tries to answer q from the cache without any computation.
func (c *Cache) Lookup(key Key, q Query) (*Hit, bool) {
	c.mu.Lock()
	r, ok := c.entries[key]
	if ok {
		c.touch(key)
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return r.answer(q)
}

// Store installs res under key, keeping whichever of the existing and new
// results has the longer prefix (a longer prefix answers strictly more
// queries; the shorter one is its own prefix, so nothing is lost).
func (c *Cache) Store(key Key, res *Result) {
	c.mu.Lock()
	if old, ok := c.entries[key]; ok {
		if len(old.Order) >= len(res.Order) {
			c.touch(key)
			c.mu.Unlock()
			return
		}
		c.bytes -= old.bytes()
	} else {
		if c.byHash[key.GraphHash] == nil {
			c.byHash[key.GraphHash] = make(map[Key]struct{})
		}
		c.byHash[key.GraphHash][key] = struct{}{}
	}
	c.entries[key] = res
	c.bytes += res.bytes()
	c.touch(key)
	evicted := c.evictLocked(key)
	c.mu.Unlock()
	if c.opts.OnEvict != nil {
		for _, k := range evicted {
			c.opts.OnEvict(k)
		}
	}
}

// InvalidateGraph drops every result computed from the given content hash
// (graph replaced or deleted) and returns how many were removed.
func (c *Cache) InvalidateGraph(hash string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	// removeLocked unlinks each key from this same byHash set, so snapshot
	// the count (and keys) before draining it.
	set := c.byHash[hash]
	n := len(set)
	keys := make([]Key, 0, n)
	for key := range set {
		keys = append(keys, key)
	}
	for _, key := range keys {
		c.removeLocked(key)
	}
	return n
}

// Do answers q for key: from cache if possible, otherwise by running
// compute — coalescing with any identical solve already in flight. On a
// miss the computed result is stored (and shared with coalesced waiters)
// before the hit is carved from it. A cache hit or a coalesced wait is
// annotated as an event on the span in ctx (if any), so traces show why a
// request skipped the solver.
func (c *Cache) Do(ctx context.Context, key Key, q Query, compute func() (*Result, error)) (*Hit, Status, error) {
	fk := flightKey{key: key, q: q}
	// Cache check and flight join under one lock acquisition, and (below)
	// the result is stored before its flight is released: at no instant is
	// a completed solve neither cached nor in flight, so identical
	// concurrent requests can never run compute twice.
	c.mu.Lock()
	if r, ok := c.entries[key]; ok {
		c.touch(key)
		if h, answered := r.answer(q); answered {
			c.mu.Unlock()
			trace.FromContext(ctx).AddEvent("solvecache hit")
			return h, StatusHit, nil
		}
	}
	if fl, ok := c.inflight[fk]; ok {
		c.mu.Unlock()
		trace.FromContext(ctx).AddEvent("solvecache coalesced")
		<-fl.done
		if fl.err != nil {
			return nil, StatusCoalesced, fl.err
		}
		h, ok := fl.res.answer(q)
		if !ok {
			return nil, StatusCoalesced, fmt.Errorf("solvecache: coalesced result cannot answer query %+v", q)
		}
		return h, StatusCoalesced, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[fk] = fl
	c.mu.Unlock()

	res, err := compute()
	fl.res, fl.err = res, err
	if err == nil {
		c.Store(key, res)
	}
	c.mu.Lock()
	delete(c.inflight, fk)
	c.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, StatusMiss, err
	}
	h, ok := res.answer(q)
	if !ok {
		return nil, StatusMiss, fmt.Errorf("solvecache: computed result cannot answer query %+v", q)
	}
	return h, StatusMiss, nil
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the approximate retained bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// touch bumps key's recency. Callers hold c.mu.
func (c *Cache) touch(key Key) {
	c.lruSeq++
	c.lastUse[key] = c.lruSeq
}

// removeLocked drops one entry. Callers hold c.mu.
func (c *Cache) removeLocked(key Key) {
	r, ok := c.entries[key]
	if !ok {
		return
	}
	delete(c.entries, key)
	delete(c.lastUse, key)
	c.bytes -= r.bytes()
	if set := c.byHash[key.GraphHash]; set != nil {
		delete(set, key)
		if len(set) == 0 {
			delete(c.byHash, key.GraphHash)
		}
	}
}

// evictLocked enforces the bounds, sparing keep. Callers hold c.mu.
func (c *Cache) evictLocked(keep Key) []Key {
	var out []Key
	for len(c.entries) > c.opts.MaxEntries || c.bytes > c.opts.MaxBytes {
		var victim Key
		var oldest uint64
		found := false
		for key := range c.entries {
			if key == keep {
				continue
			}
			if seq := c.lastUse[key]; !found || seq < oldest {
				victim, oldest, found = key, seq, true
			}
		}
		if !found {
			break
		}
		c.removeLocked(victim)
		out = append(out, victim)
	}
	return out
}
