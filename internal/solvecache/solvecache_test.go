package solvecache

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	"prefcover/internal/greedy"
)

// strategyOptions maps the three deterministic strategies to solver
// options.
var strategyOptions = map[string]func(o greedy.Options) greedy.Options{
	greedy.StrategyScan:     func(o greedy.Options) greedy.Options { return o },
	greedy.StrategyLazy:     func(o greedy.Options) greedy.Options { o.Lazy = true; return o },
	greedy.StrategyParallel: func(o greedy.Options) greedy.Options { o.Workers = 3; return o },
}

func solveResult(t *testing.T, g *graph.Graph, opts greedy.Options) *Result {
	t.Helper()
	sol, err := greedy.Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return NewResult(sol, g.NumNodes(), len(opts.Pinned))
}

// TestPrefixPropertyServing is the core cacheability claim: the cached
// k_max result answers every budget k' <= k_max with exactly the
// solution a fresh solve at k' produces — for both variants and all
// three deterministic strategies.
func TestPrefixPropertyServing(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		for trial := 0; trial < 3; trial++ {
			g := graphtest.Random(rng, 40+rng.Intn(40), 5, variant)
			kMax := 1 + rng.Intn(g.NumNodes())
			for name, mod := range strategyOptions {
				t.Run(fmt.Sprintf("%s/%s/trial%d", variant, name, trial), func(t *testing.T) {
					base := mod(greedy.Options{Variant: variant})
					full := base
					full.K = kMax
					res := solveResult(t, g, full)
					for kp := 1; kp <= kMax; kp++ {
						hit, ok := res.answer(Query{K: kp})
						if !ok {
							t.Fatalf("k'=%d: no hit from cached k=%d", kp, kMax)
						}
						fresh := base
						fresh.K = kp
						want, err := greedy.Solve(g, fresh)
						if err != nil {
							t.Fatal(err)
						}
						if len(hit.Order) != len(want.Order) {
							t.Fatalf("k'=%d: prefix length %d, fresh %d", kp, len(hit.Order), len(want.Order))
						}
						for i := range want.Order {
							if hit.Order[i] != want.Order[i] {
								t.Fatalf("k'=%d: order[%d] = %d, fresh %d", kp, i, hit.Order[i], want.Order[i])
							}
							if hit.Gains[i] != want.Gains[i] {
								t.Fatalf("k'=%d: gain[%d] = %g, fresh %g", kp, i, hit.Gains[i], want.Gains[i])
							}
						}
						if math.Abs(hit.Cover-want.Cover) > 1e-9 {
							t.Fatalf("k'=%d: cover %g, fresh %g", kp, hit.Cover, want.Cover)
						}
						if !hit.Reached {
							t.Fatalf("k'=%d: budget-mode hit not Reached", kp)
						}
						if kp == kMax {
							if hit.Coverage == nil {
								t.Fatalf("full-prefix hit lost its coverage report")
							}
							for v := range want.Coverage {
								if hit.Coverage[v] != want.Coverage[v] {
									t.Fatalf("coverage[%d] = %g, fresh %g", v, hit.Coverage[v], want.Coverage[v])
								}
							}
						} else if hit.Coverage != nil {
							t.Fatalf("k'=%d: partial-prefix hit claims full coverage", kp)
						}
					}
					// Budgets beyond the cached prefix miss (unless the
					// order is exhaustive).
					if kMax < g.NumNodes() {
						if _, ok := res.answer(Query{K: kMax + 1}); ok {
							t.Fatalf("k'=%d > cached %d served", kMax+1, kMax)
						}
					}
				})
			}
		}
	}
}

// TestThresholdBinarySearchMatchesMinCover: threshold-mode answers carved
// out of an exhaustive cached curve must equal a fresh MinCover solve.
func TestThresholdBinarySearchMatchesMinCover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		g := graphtest.Random(rng, 60, 5, variant)
		// Cache an exhaustive solve (k = n) so every threshold is answerable.
		res := solveResult(t, g, greedy.Options{Variant: variant, K: g.NumNodes()})
		total := res.Curve[len(res.Curve)-1]
		for trial := 0; trial < 25; trial++ {
			th := rng.Float64() * total * 1.05 // some thresholds unreachable
			if th <= 0 || th > 1 {
				continue
			}
			want, err := greedy.Solve(g, greedy.Options{Variant: variant, Threshold: th})
			if err != nil {
				t.Fatal(err)
			}
			hit, ok := res.answer(Query{Threshold: th})
			if !ok {
				t.Fatalf("threshold %g: no hit from exhaustive cache", th)
			}
			if len(hit.Order) != len(want.Order) {
				t.Fatalf("threshold %g: %d items, fresh MinCover %d", th, len(hit.Order), len(want.Order))
			}
			for i := range want.Order {
				if hit.Order[i] != want.Order[i] {
					t.Fatalf("threshold %g: order[%d] = %d, fresh %d", th, i, hit.Order[i], want.Order[i])
				}
			}
			if hit.Reached != want.Reached {
				t.Fatalf("threshold %g: reached=%v, fresh %v", th, hit.Reached, want.Reached)
			}
			if math.Abs(hit.Cover-want.Cover) > 1e-9 {
				t.Fatalf("threshold %g: cover %g, fresh %g", th, hit.Cover, want.Cover)
			}
		}

		// Threshold + K cap, against the solver's combined mode.
		for trial := 0; trial < 10; trial++ {
			th := rng.Float64() * total
			k := 1 + rng.Intn(g.NumNodes())
			if th <= 0 {
				continue
			}
			want, err := greedy.Solve(g, greedy.Options{Variant: variant, Threshold: th, K: k})
			if err != nil {
				t.Fatal(err)
			}
			hit, ok := res.answer(Query{Threshold: th, K: k})
			if !ok {
				t.Fatalf("threshold %g k %d: no hit", th, k)
			}
			if len(hit.Order) != len(want.Order) || hit.Reached != want.Reached {
				t.Fatalf("threshold %g k %d: %d/%v, fresh %d/%v",
					th, k, len(hit.Order), hit.Reached, len(want.Order), want.Reached)
			}
		}
	}
}

// TestThresholdMissOnShortPrefix: a cached budget solve whose curve never
// reaches the asked threshold must miss (the solver would keep selecting).
func TestThresholdMissOnShortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graphtest.Random(rng, 50, 4, graph.Independent)
	res := solveResult(t, g, greedy.Options{Variant: graph.Independent, K: 3})
	top := res.Curve[len(res.Curve)-1]
	if _, ok := res.answer(Query{Threshold: math.Min(1, top*1.5)}); ok {
		t.Fatal("threshold beyond the cached curve served from a non-exhaustive prefix")
	}
	// But thresholds inside the curve are served.
	if _, ok := res.answer(Query{Threshold: top / 2}); !ok {
		t.Fatal("threshold inside the cached curve missed")
	}
}

func TestPinnedPrefixServing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graphtest.Random(rng, 40, 4, graph.Independent)
	pins := []int32{5, 17}
	base := greedy.Options{Variant: graph.Independent, Pinned: pins}
	full := base
	full.K = 12
	res := solveResult(t, g, full)
	for kp := len(pins); kp <= 12; kp++ {
		hit, ok := res.answer(Query{K: kp})
		if !ok {
			t.Fatalf("k'=%d: miss", kp)
		}
		fresh := base
		fresh.K = kp
		want, err := greedy.Solve(g, fresh)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Order {
			if hit.Order[i] != want.Order[i] {
				t.Fatalf("k'=%d: order[%d] = %d, fresh %d", kp, i, hit.Order[i], want.Order[i])
			}
		}
	}
	// A budget below the pin count would make the solver error; the cache
	// must not pretend to know better.
	if _, ok := res.answer(Query{K: 1}); ok {
		t.Fatal("k < len(pins) served")
	}
}

func TestStoreKeepsLongerPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphtest.Random(rng, 30, 4, graph.Independent)
	c := New(Options{})
	key := Key{GraphHash: "h", Variant: graph.Independent, Strategy: greedy.StrategyLazy}
	long := solveResult(t, g, greedy.Options{Variant: graph.Independent, K: 10, Lazy: true})
	short := solveResult(t, g, greedy.Options{Variant: graph.Independent, K: 4, Lazy: true})
	c.Store(key, long)
	c.Store(key, short) // must not shadow the longer prefix
	if _, ok := c.Lookup(key, Query{K: 9}); !ok {
		t.Fatal("storing a shorter result clobbered the longer prefix")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestInvalidateGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graphtest.Random(rng, 30, 4, graph.Independent)
	c := New(Options{})
	res := solveResult(t, g, greedy.Options{Variant: graph.Independent, K: 5})
	kA := Key{GraphHash: "a", Variant: graph.Independent, Strategy: greedy.StrategyLazy}
	kA2 := Key{GraphHash: "a", Variant: graph.Normalized, Strategy: greedy.StrategyLazy}
	kB := Key{GraphHash: "b", Variant: graph.Independent, Strategy: greedy.StrategyLazy}
	c.Store(kA, res)
	c.Store(kA2, res)
	c.Store(kB, res)
	if n := c.InvalidateGraph("a"); n != 2 {
		t.Fatalf("InvalidateGraph removed %d, want 2", n)
	}
	if _, ok := c.Lookup(kA, Query{K: 5}); ok {
		t.Fatal("invalidated entry still served")
	}
	if _, ok := c.Lookup(kB, Query{K: 5}); !ok {
		t.Fatal("unrelated entry invalidated")
	}
	if n := c.InvalidateGraph("a"); n != 0 {
		t.Fatalf("second invalidation removed %d", n)
	}
}

func TestLRUEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graphtest.Random(rng, 30, 4, graph.Independent)
	res := solveResult(t, g, greedy.Options{Variant: graph.Independent, K: 5})
	var evicted []Key
	c := New(Options{MaxEntries: 2, OnEvict: func(k Key) { evicted = append(evicted, k) }})
	key := func(h string) Key {
		return Key{GraphHash: h, Variant: graph.Independent, Strategy: greedy.StrategyLazy}
	}
	c.Store(key("a"), res)
	c.Store(key("b"), res)
	c.Lookup(key("a"), Query{K: 5}) // b becomes LRU
	c.Store(key("c"), res)
	if len(evicted) != 1 || evicted[0].GraphHash != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if _, ok := c.Lookup(key("a"), Query{K: 5}); !ok {
		t.Fatal("recently used entry evicted")
	}
}

// TestSingleflightCoalescing: concurrent identical misses run the solver
// exactly once; everyone gets the same answer.
func TestSingleflightCoalescing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graphtest.Random(rng, 40, 4, graph.Independent)
	c := New(Options{})
	key := Key{GraphHash: "x", Variant: graph.Independent, Strategy: greedy.StrategyLazy}

	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func() (*Result, error) {
		computes.Add(1)
		<-gate // hold every caller in flight until all have arrived
		sol, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: 8, Lazy: true})
		if err != nil {
			return nil, err
		}
		return NewResult(sol, g.NumNodes(), 0), nil
	}

	const callers = 8
	var started, done sync.WaitGroup
	statuses := make([]Status, callers)
	errs := make([]error, callers)
	started.Add(callers)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			started.Done()
			started.Wait() // maximize overlap
			hit, st, err := c.Do(context.Background(), key, Query{K: 8}, compute)
			statuses[i], errs[i] = st, err
			if err == nil && len(hit.Order) != 8 {
				errs[i] = fmt.Errorf("hit length %d", len(hit.Order))
			}
		}(i)
	}
	started.Wait()
	close(gate)
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	var misses, hits, coalesced int
	for _, st := range statuses {
		switch st {
		case StatusMiss:
			misses++
		case StatusHit:
			hits++
		case StatusCoalesced:
			coalesced++
		}
	}
	// Exactly the callers that raced past the initial Lookup before the
	// leader stored must have coalesced; with the gate, that is everyone
	// but the leader... except callers that arrived after the flight was
	// already gone — those read the cache (hit). Either way the solver ran
	// at most... exactly once is the whole point:
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	if misses != 1 {
		t.Fatalf("misses = %d (hits=%d coalesced=%d), want exactly 1 leader", misses, hits, coalesced)
	}
	// And afterwards it is a plain hit.
	_, st, err := c.Do(context.Background(), key, Query{K: 3}, compute)
	if err != nil || st != StatusHit {
		t.Fatalf("warm Do = %v/%v, want hit", st, err)
	}
}

func TestDoPropagatesComputeError(t *testing.T) {
	c := New(Options{})
	key := Key{GraphHash: "e", Variant: graph.Independent, Strategy: greedy.StrategyLazy}
	wantErr := fmt.Errorf("boom")
	_, st, err := c.Do(context.Background(), key, Query{K: 2}, func() (*Result, error) { return nil, wantErr })
	if err != wantErr || st != StatusMiss {
		t.Fatalf("Do = %v/%v", st, err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute cached")
	}
	// The flight is gone; a retry recomputes.
	rng := rand.New(rand.NewSource(8))
	g := graphtest.Random(rng, 20, 3, graph.Independent)
	_, st, err = c.Do(context.Background(), key, Query{K: 2}, func() (*Result, error) {
		sol, err := greedy.Solve(g, greedy.Options{Variant: graph.Independent, K: 2})
		if err != nil {
			return nil, err
		}
		return NewResult(sol, g.NumNodes(), 0), nil
	})
	if err != nil || st != StatusMiss {
		t.Fatalf("retry Do = %v/%v", st, err)
	}
}
