// Package similarity derives candidate alternative edges from item text.
// The paper's Data Adaptation Engine estimates edge weights from behavior
// (clicks next to purchases); its footnote 4 notes that "one may also use
// semantic similarity between items to approximate edge weights" without
// pursuing it. This package implements that direction as a cold-start
// complement: items with little behavioral signal (new listings, tail
// SKUs) receive candidate alternatives from a TF-IDF cosine index over
// their titles/attributes, blended into the behavioral graph at a
// configurable discount so real click evidence always dominates.
package similarity

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode"

	"prefcover/internal/graph"
)

// Doc is one item's textual description.
type Doc struct {
	// Label must match the preference-graph node label.
	Label string
	// Text is the title/attribute bag the index is built from.
	Text string
}

// IndexOptions tunes BuildIndex.
type IndexOptions struct {
	// MinTokenLength drops shorter tokens (default 2).
	MinTokenLength int
	// MaxDocFrequency drops tokens appearing in more than this fraction
	// of documents (near-stopwords). Default 0.5.
	MaxDocFrequency float64
}

func (o *IndexOptions) normalize() {
	if o.MinTokenLength <= 0 {
		o.MinTokenLength = 2
	}
	if o.MaxDocFrequency <= 0 || o.MaxDocFrequency > 1 {
		o.MaxDocFrequency = 0.5
	}
}

// Index is a TF-IDF inverted index over item texts.
type Index struct {
	labels  []string
	byLabel map[string]int32
	// postings[token] lists (doc, tf-idf weight).
	postings map[string][]posting
	// docTerms[doc] lists the informative tokens of the document with
	// their weights, so a query touches only its own tokens' postings.
	docTerms [][]term
	norms    []float64
}

type posting struct {
	doc int32
	w   float64
}

type term struct {
	token string
	w     float64
}

// Tokenize lowercases and splits on non-alphanumeric runes.
func Tokenize(text string, minLen int) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := fields[:0]
	for _, f := range fields {
		if len(f) >= minLen {
			out = append(out, f)
		}
	}
	return out
}

// BuildIndex constructs the index. Labels must be unique and texts
// non-empty after tokenization for the document to be searchable.
func BuildIndex(docs []Doc, opts IndexOptions) (*Index, error) {
	opts.normalize()
	if len(docs) == 0 {
		return nil, errors.New("similarity: no documents")
	}
	ix := &Index{
		labels:   make([]string, len(docs)),
		byLabel:  make(map[string]int32, len(docs)),
		postings: make(map[string][]posting),
		docTerms: make([][]term, len(docs)),
		norms:    make([]float64, len(docs)),
	}
	// Term frequencies per document.
	tfs := make([]map[string]float64, len(docs))
	df := make(map[string]int)
	for i, d := range docs {
		if d.Label == "" {
			return nil, fmt.Errorf("similarity: document %d has no label", i)
		}
		if _, dup := ix.byLabel[d.Label]; dup {
			return nil, fmt.Errorf("similarity: duplicate label %q", d.Label)
		}
		ix.labels[i] = d.Label
		ix.byLabel[d.Label] = int32(i)
		tf := make(map[string]float64)
		for _, tok := range Tokenize(d.Text, opts.MinTokenLength) {
			tf[tok]++
		}
		tfs[i] = tf
		for tok := range tf {
			df[tok]++
		}
	}
	n := float64(len(docs))
	maxDF := int(opts.MaxDocFrequency * n)
	if maxDF < 2 {
		// Never treat a token shared by just two documents as a stopword;
		// tiny corpora would otherwise lose all signal.
		maxDF = 2
	}
	for i, tf := range tfs {
		var norm float64
		for tok, count := range tf {
			if df[tok] > maxDF && len(docs) > 2 {
				continue // near-stopword
			}
			w := (1 + math.Log(count)) * math.Log(1+n/float64(df[tok]))
			ix.postings[tok] = append(ix.postings[tok], posting{doc: int32(i), w: w})
			ix.docTerms[i] = append(ix.docTerms[i], term{token: tok, w: w})
			norm += w * w
		}
		ix.norms[i] = math.Sqrt(norm)
	}
	return ix, nil
}

// Match is one similar item.
type Match struct {
	Label string
	// Score is the cosine similarity in [0, 1].
	Score float64
}

// TopK returns the k most similar items to the given label (excluding
// itself), best first; ties break lexicographically. Items whose text
// shares no informative token score 0 and are omitted.
func (ix *Index) TopK(label string, k int) ([]Match, error) {
	q, ok := ix.byLabel[label]
	if !ok {
		return nil, fmt.Errorf("similarity: unknown label %q", label)
	}
	if k <= 0 {
		return nil, fmt.Errorf("similarity: k must be positive, got %d", k)
	}
	if ix.norms[q] == 0 {
		return nil, nil // no informative tokens
	}
	scores := make(map[int32]float64)
	for _, t := range ix.docTerms[q] {
		for _, p := range ix.postings[t.token] {
			if p.doc != q {
				scores[p.doc] += t.w * p.w
			}
		}
	}
	matches := make([]Match, 0, len(scores))
	for doc, dot := range scores {
		if ix.norms[doc] == 0 {
			continue
		}
		s := dot / (ix.norms[q] * ix.norms[doc])
		if s > 1 {
			s = 1 // float noise
		}
		matches = append(matches, Match{Label: ix.labels[doc], Score: s})
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Label < matches[j].Label
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}

// AugmentOptions tunes Augment.
type AugmentOptions struct {
	// MinAlternatives: items with fewer outgoing behavioral edges than
	// this receive similarity-derived candidates. Default 1 (only items
	// with no alternatives at all).
	MinAlternatives int
	// PerItem is how many similarity edges to propose per sparse item.
	// Default 3.
	PerItem int
	// Alpha discounts cosine scores into acceptance probabilities;
	// similarity is weaker evidence than an observed click. Default 0.3.
	Alpha float64
	// MinScore drops weak matches. Default 0.15.
	MinScore float64
}

func (o *AugmentOptions) normalize() error {
	if o.MinAlternatives <= 0 {
		o.MinAlternatives = 1
	}
	if o.PerItem <= 0 {
		o.PerItem = 3
	}
	if o.Alpha == 0 {
		o.Alpha = 0.3
	}
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("similarity: alpha %g outside (0,1]", o.Alpha)
	}
	if o.MinScore < 0 || o.MinScore >= 1 {
		if o.MinScore != 0 {
			return fmt.Errorf("similarity: min score %g outside [0,1)", o.MinScore)
		}
	}
	if o.MinScore == 0 {
		o.MinScore = 0.15
	}
	return nil
}

// AugmentReport describes what Augment changed.
type AugmentReport struct {
	SparseItems int // items below the alternative threshold
	EdgesAdded  int
	// Unindexed counts sparse items that had no document in the index.
	Unindexed int
}

// Augment returns a copy of g where items with fewer than MinAlternatives
// outgoing edges gain similarity-derived alternatives. Existing behavioral
// edges are never modified; a similarity edge is only added where no edge
// exists. The result preserves Normalized feasibility when alpha times
// the added scores leaves the out-sums at or below 1 — Augment rescales
// additions per node if necessary.
func Augment(g *graph.Graph, ix *Index, opts AugmentOptions) (*graph.Graph, *AugmentReport, error) {
	if err := opts.normalize(); err != nil {
		return nil, nil, err
	}
	if !g.Labeled() {
		return nil, nil, errors.New("similarity: augmentation needs a labeled graph")
	}
	rep := &AugmentReport{}
	b := graph.NewBuilder(g.NumNodes(), g.NumEdges())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		b.AddLabeledNode(g.Label(v), g.NodeWeight(v))
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			b.AddEdge(v, u, ws[i])
		}
		if len(dsts) >= opts.MinAlternatives {
			continue
		}
		rep.SparseItems++
		matches, err := ix.TopK(g.Label(v), opts.PerItem+len(dsts))
		if err != nil {
			rep.Unindexed++
			continue
		}
		// Budget for additions under the Normalized out-sum invariant.
		budget := 1 - g.OutWeightSum(v)
		added := 0
		for _, m := range matches {
			if added >= opts.PerItem || budget <= graph.Eps {
				break
			}
			if m.Score < opts.MinScore {
				break // sorted: everything after is weaker
			}
			u, ok := g.Lookup(m.Label)
			if !ok || u == v {
				continue
			}
			if _, exists := g.EdgeWeight(v, u); exists {
				continue
			}
			w := opts.Alpha * m.Score
			if w > budget {
				w = budget
			}
			if w <= 0 {
				continue
			}
			b.AddEdge(v, u, w)
			budget -= w
			added++
			rep.EdgesAdded++
		}
	}
	out, err := b.Build(graph.BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	return out, rep, nil
}
