package similarity_test

import (
	"math"
	"testing"
	"testing/quick"

	"prefcover/internal/graph"
	. "prefcover/internal/similarity"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("Apple iPhone-8, 256GB (Space Gray)!", 2)
	want := []string{"apple", "iphone", "256gb", "space", "gray"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", toks, want)
		}
	}
	if got := Tokenize("a b c", 2); len(got) != 0 {
		t.Errorf("min length not applied: %v", got)
	}
}

func sampleDocs() []Doc {
	return []Doc{
		{Label: "shirt-red", Text: "red cotton shirt slim fit"},
		{Label: "shirt-blue", Text: "blue cotton shirt slim fit"},
		{Label: "shirt-wool", Text: "grey wool shirt winter"},
		{Label: "tv-lg", Text: "LG 42 inch LED television"},
		{Label: "tv-samsung", Text: "Samsung 42 inch LED television"},
	}
}

func TestBuildIndexErrors(t *testing.T) {
	if _, err := BuildIndex(nil, IndexOptions{}); err == nil {
		t.Error("empty corpus should fail")
	}
	if _, err := BuildIndex([]Doc{{Label: "", Text: "x"}}, IndexOptions{}); err == nil {
		t.Error("missing label should fail")
	}
	if _, err := BuildIndex([]Doc{{Label: "a", Text: "x"}, {Label: "a", Text: "y"}}, IndexOptions{}); err == nil {
		t.Error("duplicate label should fail")
	}
}

func TestTopKFindsSemanticNeighbors(t *testing.T) {
	ix, err := BuildIndex(sampleDocs(), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ix.TopK("shirt-red", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].Label != "shirt-blue" {
		t.Fatalf("matches = %v, want shirt-blue first", matches)
	}
	// The TVs must rank below the other shirts for a shirt query.
	for _, m := range matches {
		if m.Label == "tv-lg" || m.Label == "tv-samsung" {
			t.Errorf("cross-domain match leaked: %v", matches)
		}
	}
	tvMatches, err := ix.TopK("tv-lg", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tvMatches) != 1 || tvMatches[0].Label != "tv-samsung" {
		t.Fatalf("tv matches = %v", tvMatches)
	}
}

func TestTopKErrors(t *testing.T) {
	ix, _ := BuildIndex(sampleDocs(), IndexOptions{})
	if _, err := ix.TopK("nope", 2); err == nil {
		t.Error("unknown label should fail")
	}
	if _, err := ix.TopK("shirt-red", 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestScoresWithinBounds(t *testing.T) {
	ix, _ := BuildIndex(sampleDocs(), IndexOptions{})
	prop := func(which uint8, k uint8) bool {
		docs := sampleDocs()
		label := docs[int(which)%len(docs)].Label
		matches, err := ix.TopK(label, 1+int(k)%5)
		if err != nil {
			return false
		}
		for i, m := range matches {
			if m.Score < 0 || m.Score > 1 || m.Label == label {
				return false
			}
			if i > 0 && m.Score > matches[i-1].Score {
				return false // must be sorted
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIdenticalTextsScoreOne(t *testing.T) {
	ix, err := BuildIndex([]Doc{
		{Label: "a", Text: "red cotton shirt"},
		{Label: "b", Text: "red cotton shirt"},
		{Label: "c", Text: "something else entirely"},
	}, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := ix.TopK("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].Label != "b" || math.Abs(matches[0].Score-1) > 1e-9 {
		t.Fatalf("matches = %v", matches)
	}
}

func buildSparseGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(0, 0)
	b.AddLabeledNode("shirt-red", 0.3)
	b.AddLabeledNode("shirt-blue", 0.3)
	b.AddLabeledNode("shirt-wool", 0.2)
	b.AddLabeledNode("tv-lg", 0.1)
	b.AddLabeledNode("tv-samsung", 0.1)
	// Only shirt-red has behavioral evidence.
	b.AddLabeledEdge("shirt-red", "shirt-blue", 0.6)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAugmentAddsOnlyToSparseItems(t *testing.T) {
	g := buildSparseGraph(t)
	ix, err := BuildIndex(sampleDocs(), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := Augment(g, ix, AugmentOptions{MinAlternatives: 1, PerItem: 2, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// shirt-red already has an alternative: untouched.
	red, _ := out.Lookup("shirt-red")
	if out.OutDegree(red) != 1 {
		t.Errorf("shirt-red degree = %d, want 1 (behavioral edge only)", out.OutDegree(red))
	}
	if w, _ := out.EdgeWeight(red, mustLookup(t, out, "shirt-blue")); w != 0.6 {
		t.Errorf("behavioral edge weight changed: %g", w)
	}
	// tv-lg had nothing: gains tv-samsung.
	lg := mustLookup(t, out, "tv-lg")
	if out.OutDegree(lg) == 0 {
		t.Error("tv-lg gained no alternatives")
	}
	if _, ok := out.EdgeWeight(lg, mustLookup(t, out, "tv-samsung")); !ok {
		t.Error("tv-lg should link to tv-samsung")
	}
	if rep.SparseItems != 4 || rep.EdgesAdded == 0 {
		t.Errorf("report = %+v", rep)
	}
	// Result remains a valid graph under both variants.
	if err := out.Validate(graph.ValidateOptions{Variant: graph.Normalized, RequireSimplex: true}); err != nil {
		t.Errorf("augmented graph invalid: %v", err)
	}
}

func mustLookup(t *testing.T, g *graph.Graph, label string) int32 {
	t.Helper()
	v, ok := g.Lookup(label)
	if !ok {
		t.Fatalf("missing %s", label)
	}
	return v
}

func TestAugmentValidation(t *testing.T) {
	g := buildSparseGraph(t)
	ix, _ := BuildIndex(sampleDocs(), IndexOptions{})
	if _, _, err := Augment(g, ix, AugmentOptions{Alpha: 2}); err == nil {
		t.Error("alpha > 1 should fail")
	}
	if _, _, err := Augment(g, ix, AugmentOptions{MinScore: 1.5}); err == nil {
		t.Error("min score >= 1 should fail")
	}
	b := graph.NewBuilder(1, 0)
	b.AddNode(1)
	unlabeled, _ := b.Build(graph.BuildOptions{})
	if _, _, err := Augment(unlabeled, ix, AugmentOptions{}); err == nil {
		t.Error("unlabeled graph should fail")
	}
}

func TestAugmentCountsUnindexedItems(t *testing.T) {
	g := buildSparseGraph(t)
	// Index missing the TV docs.
	ix, err := BuildIndex(sampleDocs()[:3], IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Augment(g, ix, AugmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unindexed != 2 {
		t.Errorf("unindexed = %d, want 2 (both TVs)", rep.Unindexed)
	}
}

func TestAugmentRespectsNormalizedBudget(t *testing.T) {
	// An item already carrying 0.95 outgoing probability can absorb at
	// most 0.05 more.
	b := graph.NewBuilder(0, 0)
	b.AddLabeledNode("a", 0.4)
	b.AddLabeledNode("b", 0.3)
	b.AddLabeledNode("c", 0.3)
	b.AddLabeledEdge("a", "b", 0.95)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex([]Doc{
		{Label: "a", Text: "green garden hose"},
		{Label: "b", Text: "green garden hose long"},
		{Label: "c", Text: "green garden hose short"},
	}, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Augment(g, ix, AugmentOptions{MinAlternatives: 2, PerItem: 2, Alpha: 1, MinScore: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	a := mustLookup(t, out, "a")
	if s := out.OutWeightSum(a); s > 1+graph.Eps {
		t.Errorf("out sum = %g exceeds 1", s)
	}
}
