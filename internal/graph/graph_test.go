package graph_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	. "prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

// buildTiny returns the 5-node graph used across tests:
//
//	0 -> 1 (0.5)   0 -> 2 (0.25)
//	1 -> 2 (1.0)
//	3 -> 0 (0.1)
//	weights: 0.4, 0.3, 0.2, 0.05, 0.05 (node 4 isolated)
func buildTiny(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5, 4)
	for _, w := range []float64{0.4, 0.3, 0.2, 0.05, 0.05} {
		b.AddNode(w)
	}
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.25)
	b.AddEdge(1, 2, 1.0)
	b.AddEdge(3, 0, 0.1)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := buildTiny(t)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if w := g.NodeWeight(0); w != 0.4 {
		t.Errorf("NodeWeight(0) = %g, want 0.4", w)
	}
	if got := g.TotalWeight(); math.Abs(got-1) > 1e-12 {
		t.Errorf("TotalWeight = %g, want 1", got)
	}
}

func TestOutEdgesSortedAndQueryable(t *testing.T) {
	g := buildTiny(t)
	dsts, ws := g.OutEdges(0)
	if len(dsts) != 2 || dsts[0] != 1 || dsts[1] != 2 {
		t.Fatalf("OutEdges(0) dsts = %v, want [1 2]", dsts)
	}
	if ws[0] != 0.5 || ws[1] != 0.25 {
		t.Fatalf("OutEdges(0) weights = %v", ws)
	}
	if w, ok := g.EdgeWeight(0, 2); !ok || w != 0.25 {
		t.Errorf("EdgeWeight(0,2) = %g,%v want 0.25,true", w, ok)
	}
	if _, ok := g.EdgeWeight(2, 0); ok {
		t.Errorf("EdgeWeight(2,0) should not exist")
	}
	if _, ok := g.EdgeWeight(4, 0); ok {
		t.Errorf("EdgeWeight from isolated node should not exist")
	}
}

func TestInEdges(t *testing.T) {
	g := buildTiny(t)
	srcs, ws := g.InEdges(2)
	if len(srcs) != 2 || srcs[0] != 0 || srcs[1] != 1 {
		t.Fatalf("InEdges(2) srcs = %v, want [0 1]", srcs)
	}
	if ws[0] != 0.25 || ws[1] != 1.0 {
		t.Fatalf("InEdges(2) weights = %v", ws)
	}
	if d := g.InDegree(0); d != 1 {
		t.Errorf("InDegree(0) = %d, want 1", d)
	}
	if d := g.MaxInDegree(); d != 2 {
		t.Errorf("MaxInDegree = %d, want 2", d)
	}
}

func TestDegrees(t *testing.T) {
	g := buildTiny(t)
	wantOut := []int{2, 1, 0, 1, 0}
	wantIn := []int{1, 1, 2, 0, 0}
	for v := int32(0); v < 5; v++ {
		if d := g.OutDegree(v); d != wantOut[v] {
			t.Errorf("OutDegree(%d) = %d, want %d", v, d, wantOut[v])
		}
		if d := g.InDegree(v); d != wantIn[v] {
			t.Errorf("InDegree(%d) = %d, want %d", v, d, wantIn[v])
		}
	}
}

func TestLabeledGraph(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddLabeledNode("tv-lg-19", 0.6)
	b.AddLabeledNode("tv-lg-21", 0.4)
	b.AddLabeledEdge("tv-lg-19", "tv-lg-21", 0.8)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.Labeled() {
		t.Fatal("graph should be labeled")
	}
	v, ok := g.Lookup("tv-lg-21")
	if !ok || v != 1 {
		t.Fatalf("Lookup = %d,%v want 1,true", v, ok)
	}
	if got := g.Label(0); got != "tv-lg-19" {
		t.Errorf("Label(0) = %q", got)
	}
	if _, ok := g.Lookup("absent"); ok {
		t.Error("Lookup of absent label should fail")
	}
}

func TestUnlabeledLabelSynthesized(t *testing.T) {
	g := buildTiny(t)
	if got := g.Label(3); got != "#3" {
		t.Errorf("Label(3) = %q, want #3", got)
	}
	if _, ok := g.Lookup("#3"); ok {
		t.Error("unlabeled graph should not resolve lookups")
	}
}

func TestBuilderNodeUpsert(t *testing.T) {
	b := NewBuilder(0, 0)
	a := b.Node("a")
	a2 := b.Node("a")
	if a != a2 {
		t.Fatalf("Node(a) twice gave %d then %d", a, a2)
	}
	b.SetWeight(a, 0.7)
	b.AddWeight(a, 0.1)
	bID := b.Node("b")
	b.SetWeight(bID, 0.2)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if w := g.NodeWeight(a); math.Abs(w-0.8) > 1e-12 {
		t.Errorf("weight after upsert = %g, want 0.8", w)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder(0, 0)
		b.AddLabeledNode("x", 0.5)
		b.AddLabeledNode("x", 0.5)
		if _, err := b.Build(BuildOptions{}); err == nil {
			t.Fatal("want duplicate-label error")
		}
	})
	t.Run("mixing labeled and unlabeled", func(t *testing.T) {
		b := NewBuilder(0, 0)
		b.AddNode(0.5)
		b.AddLabeledNode("x", 0.5)
		if _, err := b.Build(BuildOptions{}); err == nil {
			t.Fatal("want mixing error")
		}
	})
	t.Run("edge to unknown node", func(t *testing.T) {
		b := NewBuilder(0, 0)
		b.AddNode(1)
		b.AddEdge(0, 7, 0.5)
		if _, err := b.Build(BuildOptions{}); err == nil {
			t.Fatal("want unknown-node error")
		}
	})
	t.Run("set weight on unknown node", func(t *testing.T) {
		b := NewBuilder(0, 0)
		b.SetWeight(3, 0.5)
		if _, err := b.Build(BuildOptions{}); err == nil {
			t.Fatal("want unknown-node error")
		}
	})
	t.Run("empty graph", func(t *testing.T) {
		b := NewBuilder(0, 0)
		if _, err := b.Build(BuildOptions{}); err == nil {
			t.Fatal("want empty-graph error")
		}
	})
	t.Run("duplicate edge rejected by default", func(t *testing.T) {
		b := NewBuilder(0, 0)
		b.AddNode(0.5)
		b.AddNode(0.5)
		b.AddEdge(0, 1, 0.5)
		b.AddEdge(0, 1, 0.25)
		if _, err := b.Build(BuildOptions{}); err == nil {
			t.Fatal("want duplicate-edge error")
		}
	})
}

func TestDuplicatePolicies(t *testing.T) {
	build := func(policy DuplicatePolicy) float64 {
		b := NewBuilder(0, 0)
		b.AddNode(0.5)
		b.AddNode(0.5)
		b.AddEdge(0, 1, 0.5)
		b.AddEdge(0, 1, 0.25)
		g, err := b.Build(BuildOptions{Duplicates: policy})
		if err != nil {
			t.Fatalf("Build(%d): %v", policy, err)
		}
		if g.NumEdges() != 1 {
			t.Fatalf("policy %d kept %d edges", policy, g.NumEdges())
		}
		w, _ := g.EdgeWeight(0, 1)
		return w
	}
	if w := build(DupKeepMax); w != 0.5 {
		t.Errorf("DupKeepMax = %g, want 0.5", w)
	}
	if w := build(DupSum); w != 0.75 {
		t.Errorf("DupSum = %g, want 0.75", w)
	}
	if w := build(DupCombine); math.Abs(w-0.625) > 1e-12 {
		t.Errorf("DupCombine = %g, want 0.625", w)
	}
}

func TestNormalizeWeights(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddNode(3)
	b.AddNode(1)
	g, err := b.Build(BuildOptions{NormalizeWeights: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if w := g.NodeWeight(0); math.Abs(w-0.75) > 1e-12 {
		t.Errorf("normalized weight = %g, want 0.75", w)
	}
	b2 := NewBuilder(0, 0)
	b2.AddNode(0)
	if _, err := b2.Build(BuildOptions{NormalizeWeights: true}); err == nil {
		t.Fatal("normalizing zero-sum weights should fail")
	}
}

func TestDropZeroEdges(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddNode(0.5)
	b.AddNode(0.5)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 0, 0.5)
	g, err := b.Build(BuildOptions{DropZeroEdges: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestValidate(t *testing.T) {
	mk := func(nodeW []float64, edges []Edge) *Graph {
		b := NewBuilder(len(nodeW), len(edges))
		for _, w := range nodeW {
			b.AddNode(w)
		}
		for _, e := range edges {
			b.AddEdge(e.Src, e.Dst, e.W)
		}
		g, err := b.Build(BuildOptions{})
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return g
	}
	t.Run("valid simplex", func(t *testing.T) {
		g := mk([]float64{0.5, 0.5}, []Edge{{0, 1, 0.5}})
		if err := g.Validate(ValidateOptions{RequireSimplex: true}); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
	t.Run("not simplex", func(t *testing.T) {
		g := mk([]float64{0.5, 0.6}, nil)
		if err := g.Validate(ValidateOptions{RequireSimplex: true}); err == nil {
			t.Error("want simplex violation")
		}
	})
	t.Run("node weight out of range", func(t *testing.T) {
		g := mk([]float64{1.5, 0.5}, nil)
		if err := g.Validate(ValidateOptions{}); err == nil {
			t.Error("want node-weight violation")
		}
	})
	t.Run("edge weight out of range", func(t *testing.T) {
		g := mk([]float64{0.5, 0.5}, []Edge{{0, 1, 1.5}})
		if err := g.Validate(ValidateOptions{}); err == nil {
			t.Error("want edge-weight violation")
		}
	})
	t.Run("normalized out sum", func(t *testing.T) {
		g := mk([]float64{0.5, 0.25, 0.25}, []Edge{{0, 1, 0.7}, {0, 2, 0.7}})
		if err := g.Validate(ValidateOptions{Variant: Independent}); err != nil {
			t.Errorf("independent should allow out sum > 1: %v", err)
		}
		if err := g.Validate(ValidateOptions{Variant: Normalized}); err == nil {
			t.Error("normalized should reject out sum > 1")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		g := mk([]float64{1}, []Edge{{0, 0, 0.5}})
		if err := g.Validate(ValidateOptions{}); err == nil {
			t.Error("want self-loop violation")
		}
		if err := g.Validate(ValidateOptions{AllowSelfLoops: true}); err != nil {
			t.Errorf("AllowSelfLoops: %v", err)
		}
	})
}

func TestVariantString(t *testing.T) {
	if Independent.String() != "independent" || Normalized.String() != "normalized" {
		t.Error("variant strings wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant should still print")
	}
	for _, tc := range []struct {
		in   string
		want Variant
	}{{"independent", Independent}, {"i", Independent}, {"ipc", Independent}, {"normalized", Normalized}, {"n", Normalized}, {"npc", Normalized}} {
		got, err := ParseVariant(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseVariant(%q) = %v,%v", tc.in, got, err)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Error("want parse error")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := buildTiny(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("Edges len = %d", len(edges))
	}
	b := NewBuilder(g.NumNodes(), len(edges))
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		b.AddNode(g.NodeWeight(v))
	}
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst, e.W)
	}
	g2, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !equalGraphs(g, g2) {
		t.Error("rebuild from Edges() differs")
	}
}

// equalGraphs compares structure and weights exactly.
func equalGraphs(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := int32(0); v < int32(a.NumNodes()); v++ {
		if a.NodeWeight(v) != b.NodeWeight(v) {
			return false
		}
		ad, aw := a.OutEdges(v)
		bd, bw := b.OutEdges(v)
		if len(ad) != len(bd) {
			return false
		}
		for i := range ad {
			if ad[i] != bd[i] || aw[i] != bw[i] {
				return false
			}
		}
	}
	return true
}

func TestRandomGraphValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	prop := func(seed int64, variantBit bool) bool {
		rng := rand.New(rand.NewSource(seed))
		variant := Independent
		if variantBit {
			variant = Normalized
		}
		g := graphtest.Random(rng, 2+rng.Intn(40), 4, variant)
		return g.Validate(ValidateOptions{Variant: variant, RequireSimplex: true}) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestInOutConsistencyProperty(t *testing.T) {
	// Every out-edge must appear exactly once as an in-edge with the same
	// weight, and vice versa.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 2+rng.Intn(50), 5, Independent)
		count := 0
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			dsts, ws := g.OutEdges(v)
			for i, u := range dsts {
				srcs, iws := g.InEdges(u)
				found := false
				for j, s := range srcs {
					if s == v && iws[j] == ws[i] {
						found = true
						break
					}
				}
				if !found {
					return false
				}
				count++
			}
		}
		return count == g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
