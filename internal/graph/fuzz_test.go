package graph_test

import (
	"bytes"
	"strings"
	"testing"

	. "prefcover/internal/graph"
)

// FuzzReadTSV ensures the TSV parser never panics and that anything it
// accepts re-serializes to a parseable document.
func FuzzReadTSV(f *testing.F) {
	f.Add("node\ta\t0.5\nnode\tb\t0.5\nedge\ta\tb\t0.5\n")
	f.Add("# comment\n\nnode\tx\t1\n")
	f.Add("edge\ta\tb\t0.5\n")
	f.Add("node\ta\tNaN\n")
	f.Add("node\ta\t1e309\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadTSV(strings.NewReader(input), BuildOptions{})
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTSV(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		back, err := ReadTSV(&buf, BuildOptions{})
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed shape")
		}
	})
}

// FuzzReadBinary ensures the binary decoder rejects corrupt input without
// panicking or over-allocating.
func FuzzReadBinary(f *testing.F) {
	g := mustTiny()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PCG1"))
	f.Add([]byte("PCG1\x00\x00\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be internally consistent.
		if g.NumNodes() <= 0 {
			t.Fatal("accepted graph with no nodes")
		}
		edges := 0
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			dsts, _ := g.OutEdges(v)
			edges += len(dsts)
		}
		if edges != g.NumEdges() {
			t.Fatal("edge count mismatch")
		}
	})
}

func mustTiny() *Graph {
	b := NewBuilder(2, 1)
	b.AddLabeledNode("a", 0.5)
	b.AddLabeledNode("b", 0.5)
	b.AddLabeledEdge("a", "b", 0.5)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}
