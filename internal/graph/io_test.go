package graph_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	. "prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

func labeledSample(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(0, 0)
	b.AddLabeledNode("alpha", 0.5)
	b.AddLabeledNode("beta", 0.3)
	b.AddLabeledNode("gamma", 0.2)
	b.AddLabeledEdge("alpha", "beta", 0.75)
	b.AddLabeledEdge("beta", "gamma", 0.5)
	b.AddLabeledEdge("gamma", "alpha", 0.125)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestTSVRoundTrip(t *testing.T) {
	g := labeledSample(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	back, err := ReadTSV(&buf, BuildOptions{})
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	assertSameGraph(t, g, back)
	if back.Label(0) != "alpha" {
		t.Errorf("label lost: %q", back.Label(0))
	}
}

func TestTSVErrors(t *testing.T) {
	cases := map[string]string{
		"unknown record":   "bogus\tx\t1\n",
		"short node":       "node\tx\n",
		"bad node weight":  "node\tx\tnope\n",
		"short edge":       "node\tx\t0.5\nedge\tx\tx\n",
		"bad edge weight":  "node\tx\t0.5\nedge\tx\tx\tnope\n",
		"undeclared node":  "node\tx\t0.5\nedge\tx\ty\t0.5\n",
		"undeclared node2": "node\tx\t0.5\nedge\ty\tx\t0.5\n",
	}
	for name, input := range cases {
		if _, err := ReadTSV(strings.NewReader(input), BuildOptions{}); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestTSVIgnoresCommentsAndBlanks(t *testing.T) {
	input := "# header\n\nnode\tx\t0.6\nnode\ty\t0.4\n# mid comment\nedge\tx\ty\t0.5\n"
	g, err := ReadTSV(strings.NewReader(input), BuildOptions{})
	if err != nil {
		t.Fatalf("ReadTSV: %v", err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := labeledSample(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf, BuildOptions{})
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertSameGraph(t, g, back)
}

func TestJSONUnlabeledRoundTrip(t *testing.T) {
	g := buildTiny(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf, BuildOptions{})
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertSameGraph(t, g, back)
	if back.Labeled() {
		t.Error("unlabeled graph became labeled")
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{"), BuildOptions{}); err == nil {
		t.Error("truncated json should fail")
	}
	bad := `{"nodes":[{"weight":1}],"edges":[{"src":0,"dst":9,"weight":0.5}]}`
	if _, err := ReadJSON(strings.NewReader(bad), BuildOptions{}); err == nil {
		t.Error("out-of-range edge should fail")
	}
}

func TestBinaryRoundTripLabeled(t *testing.T) {
	g := labeledSample(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertSameGraph(t, g, back)
	if v, ok := back.Lookup("gamma"); !ok || v != 2 {
		t.Errorf("Lookup after binary round trip: %d,%v", v, ok)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 2+rng.Intn(60), 5, Independent)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g.NumNodes() != back.NumNodes() || g.NumEdges() != back.NumEdges() {
			return false
		}
		// In-CSR is rebuilt on load; verify it matches the original.
		for v := int32(0); v < int32(g.NumNodes()); v++ {
			gs, gw := g.InEdges(v)
			bs, bw := back.InEdges(v)
			if len(gs) != len(bs) {
				return false
			}
			for i := range gs {
				if gs[i] != bs[i] || gw[i] != bw[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("XXXXgarbage")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadBinary(strings.NewReader("PCG1")); err == nil {
		t.Error("truncated header should fail")
	}
}

func TestBinaryRejectsCorruptOffsets(t *testing.T) {
	g := labeledSample(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	data := buf.Bytes()
	// Header: magic(4) flags(4) n(8) m(8), then nodeW (3*8), then
	// outStart (4*8). Corrupt the final outStart entry.
	off := 4 + 4 + 8 + 8 + 3*8 + 3*8
	data[off] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("corrupt offsets should fail")
	}
}

func assertSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("nodes: want %d got %d", want.NumNodes(), got.NumNodes())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("edges: want %d got %d", want.NumEdges(), got.NumEdges())
	}
	for v := int32(0); v < int32(want.NumNodes()); v++ {
		if want.NodeWeight(v) != got.NodeWeight(v) {
			t.Fatalf("node %d weight: want %g got %g", v, want.NodeWeight(v), got.NodeWeight(v))
		}
		wd, ww := want.OutEdges(v)
		gd, gw := got.OutEdges(v)
		if len(wd) != len(gd) {
			t.Fatalf("node %d out-degree: want %d got %d", v, len(wd), len(gd))
		}
		for i := range wd {
			if wd[i] != gd[i] || ww[i] != gw[i] {
				t.Fatalf("node %d edge %d mismatch", v, i)
			}
		}
	}
}
