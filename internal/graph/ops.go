package graph

import (
	"fmt"
	"sort"
)

// Reverse returns a new graph with every edge direction flipped. Node
// weights and labels are shared with the receiver (both are immutable).
// The Theorem 4.1 reduction from directed Max Dominating Set relies on this.
func (g *Graph) Reverse() *Graph {
	return &Graph{
		nodeW:  g.nodeW,
		labels: g.labels,
		byName: g.byName,
		// The reverse graph's outgoing adjacency is exactly the original
		// incoming adjacency, and vice versa. The in/out CSR pair makes
		// this a zero-copy operation.
		outStart: g.inStart,
		outDst:   g.inSrc,
		outW:     g.inW,
		inStart:  g.outStart,
		inSrc:    g.outDst,
		inW:      g.outW,
	}
}

// Induce returns the subgraph induced by keep (which may be in any order and
// must not contain duplicates) plus a mapping from new ids to original ids.
// Node weights are copied verbatim (not re-normalized); use Renormalize when
// the result should be a preference graph in its own right.
func (g *Graph) Induce(keep []int32) (*Graph, []int32, error) {
	oldToNew := make(map[int32]int32, len(keep))
	newToOld := make([]int32, len(keep))
	for i, v := range keep {
		if v < 0 || int(v) >= g.NumNodes() {
			return nil, nil, fmt.Errorf("graph: induce references unknown node %d", v)
		}
		if _, dup := oldToNew[v]; dup {
			return nil, nil, fmt.Errorf("graph: induce received duplicate node %d", v)
		}
		oldToNew[v] = int32(i)
		newToOld[i] = v
	}
	b := NewBuilder(len(keep), 0)
	for _, old := range newToOld {
		if g.Labeled() {
			b.AddLabeledNode(g.Label(old), g.NodeWeight(old))
		} else {
			b.AddNode(g.NodeWeight(old))
		}
	}
	for newSrc, old := range newToOld {
		dsts, ws := g.OutEdges(old)
		for i, u := range dsts {
			if newDst, ok := oldToNew[u]; ok {
				b.AddEdge(int32(newSrc), newDst, ws[i])
			}
		}
	}
	sub, err := b.Build(BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	return sub, newToOld, nil
}

// TopNodesByWeight returns the ids of the n heaviest nodes (ties broken by
// smaller id), a convenient way to carve dataset subsets for the
// brute-force experiments of Figure 4a/4b.
func (g *Graph) TopNodesByWeight(n int) []int32 {
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	ids := make([]int32, g.NumNodes())
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := g.nodeW[ids[i]], g.nodeW[ids[j]]
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	return ids[:n]
}

// Renormalize returns a copy of g whose node weights sum to 1. It fails on
// an all-zero graph.
func (g *Graph) Renormalize() (*Graph, error) {
	sum := g.TotalWeight()
	if sum <= 0 {
		return nil, fmt.Errorf("graph: cannot renormalize total weight %g", sum)
	}
	w := make([]float64, len(g.nodeW))
	for i, x := range g.nodeW {
		w[i] = x / sum
	}
	out := *g
	out.nodeW = w
	return &out, nil
}

// ClosureOptions controls Closure.
type ClosureOptions struct {
	// Variant selects how path probabilities compose with existing edges:
	// Independent OR-combines (w = 1-(1-a)(1-b)); Normalized adds and caps
	// the per-node outgoing sum at 1 by proportional rescaling.
	Variant Variant
	// MaxDepth bounds the number of relaxation rounds; round r adds
	// two-hop compositions of the round r-1 graph, so depth d captures
	// replacement chains of length up to 2^d. The paper (footnote 2)
	// assumes the input graph is already transitively closed; this helper
	// exists for constructing such graphs from raw one-step "browsing"
	// graphs. Default 1.
	MaxDepth int
	// MinWeight prunes composed edges below this probability to keep the
	// closure sparse. Default 1e-4.
	MinWeight float64
}

// Closure returns the bounded probabilistic transitive closure of g: for
// every path v->w->u it considers the composed alternative probability
// W(v,w)*W(w,u) and merges it into the edge set. Self-compositions (paths
// returning to v) are discarded.
func (g *Graph) Closure(opts ClosureOptions) (*Graph, error) {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 1
	}
	if opts.MinWeight <= 0 {
		opts.MinWeight = 1e-4
	}
	cur := g
	for depth := 0; depth < opts.MaxDepth; depth++ {
		next, changed, err := cur.closeOnce(opts)
		if err != nil {
			return nil, err
		}
		cur = next
		if !changed {
			break
		}
	}
	return cur, nil
}

func (g *Graph) closeOnce(opts ClosureOptions) (*Graph, bool, error) {
	n := g.NumNodes()
	b := NewBuilder(n, g.NumEdges())
	for v := int32(0); v < int32(n); v++ {
		if g.Labeled() {
			b.AddLabeledNode(g.Label(v), g.NodeWeight(v))
		} else {
			b.AddNode(g.NodeWeight(v))
		}
	}
	changed := false
	for v := int32(0); v < int32(n); v++ {
		// Direct edges first.
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			b.AddEdge(v, u, ws[i])
		}
		// Two-hop compositions v->w->u, u != v.
		for i, w := range dsts {
			wv := ws[i]
			dd, dw := g.OutEdges(w)
			for j, u := range dd {
				if u == v {
					continue
				}
				composed := wv * dw[j]
				if composed < opts.MinWeight {
					continue
				}
				if _, direct := g.EdgeWeight(v, u); !direct {
					changed = true
				}
				b.AddEdge(v, u, composed)
			}
		}
	}
	policy := DupCombine
	if opts.Variant == Normalized {
		policy = DupSum
	}
	out, err := b.Build(BuildOptions{Duplicates: policy})
	if err != nil {
		return nil, false, err
	}
	if opts.Variant == Normalized {
		out = out.capOutWeights()
	}
	return out, changed, nil
}

// capOutWeights proportionally rescales any node whose outgoing weight sum
// exceeds 1 so the Normalized invariant holds. Returns a graph sharing
// structure with g but owning its edge-weight slices.
func (g *Graph) capOutWeights() *Graph {
	outW := make([]float64, len(g.outW))
	copy(outW, g.outW)
	scale := make([]float64, g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		lo, hi := g.outStart[v], g.outStart[v+1]
		var s float64
		for i := lo; i < hi; i++ {
			s += outW[i]
		}
		scale[v] = 1
		if s > 1 {
			scale[v] = 1 / s
			for i := lo; i < hi; i++ {
				outW[i] /= s
			}
		}
	}
	inW := make([]float64, len(g.inW))
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		lo, hi := g.inStart[v], g.inStart[v+1]
		for i := lo; i < hi; i++ {
			inW[i] = g.inW[i] * scale[g.inSrc[i]]
		}
	}
	out := *g
	out.outW = outW
	out.inW = inW
	return &out
}
