package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stats summarizes a preference graph; these are the quantities reported in
// the paper's Table 2 plus the degree structure that governs the greedy
// algorithm's O(nkD) complexity.
type Stats struct {
	Nodes        int
	Edges        int
	TotalWeight  float64
	MaxNodeW     float64
	MaxInDegree  int
	MaxOutDegree int
	AvgInDegree  float64
	AvgOutDegree float64
	// Isolated counts nodes with neither incoming nor outgoing edges:
	// items that cover nothing and can only be covered by retaining them.
	Isolated int
	// GiniNodeWeight measures popularity skew in [0,1]; e-commerce
	// purchase distributions are heavily skewed (near 1).
	GiniNodeWeight float64
	// MeanEdgeW and MaxOutWeightSum characterize the edge-weight scale;
	// MaxOutWeightSum <= 1 is the Normalized feasibility condition.
	MeanEdgeW       float64
	MaxOutWeightSum float64
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	n := g.NumNodes()
	s := Stats{Nodes: n, Edges: g.NumEdges()}
	for v := int32(0); v < int32(n); v++ {
		w := g.NodeWeight(v)
		s.TotalWeight += w
		if w > s.MaxNodeW {
			s.MaxNodeW = w
		}
		in, out := g.InDegree(v), g.OutDegree(v)
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in == 0 && out == 0 {
			s.Isolated++
		}
		if os := g.OutWeightSum(v); os > s.MaxOutWeightSum {
			s.MaxOutWeightSum = os
		}
	}
	if n > 0 {
		s.AvgInDegree = float64(g.NumEdges()) / float64(n)
		s.AvgOutDegree = s.AvgInDegree
	}
	if g.NumEdges() > 0 {
		var ew float64
		for _, w := range g.outW {
			ew += w
		}
		s.MeanEdgeW = ew / float64(g.NumEdges())
	}
	s.GiniNodeWeight = gini(g.nodeW)
	return s
}

// gini computes the Gini coefficient of nonnegative values; 0 means
// perfectly uniform, values near 1 mean extreme concentration.
func gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, values)
	sort.Float64s(sorted)
	var cum, sum float64
	for i, v := range sorted {
		cum += v * float64(i+1)
		sum += v
	}
	if sum == 0 {
		return 0
	}
	return (2*cum/(float64(n)*sum) - float64(n+1)/float64(n))
}

// String renders the stats as an aligned block.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d edges=%d totalW=%.6f\n", s.Nodes, s.Edges, s.TotalWeight)
	fmt.Fprintf(&b, "degree: in max=%d out max=%d avg=%.2f isolated=%d\n",
		s.MaxInDegree, s.MaxOutDegree, s.AvgInDegree, s.Isolated)
	fmt.Fprintf(&b, "weights: maxNode=%.6f gini=%.3f meanEdge=%.4f maxOutSum=%.4f",
		s.MaxNodeW, s.GiniNodeWeight, s.MeanEdgeW, s.MaxOutWeightSum)
	return b.String()
}

// DegreeHistogram returns counts of in-degrees bucketed by powers of two:
// bucket i counts nodes with in-degree in [2^i, 2^(i+1)), bucket 0 also
// counting degree-0 nodes separately via the first return value.
func (g *Graph) DegreeHistogram() (zero int, buckets []int) {
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		d := g.InDegree(v)
		if d == 0 {
			zero++
			continue
		}
		b := int(math.Log2(float64(d)))
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return zero, buckets
}
