package graph_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	. "prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

func TestReverse(t *testing.T) {
	g := buildTiny(t)
	r := g.Reverse()
	if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed counts")
	}
	// 0->1 in g becomes 1->0 in r.
	if w, ok := r.EdgeWeight(1, 0); !ok || w != 0.5 {
		t.Errorf("reverse EdgeWeight(1,0) = %g,%v", w, ok)
	}
	if _, ok := r.EdgeWeight(0, 1); ok {
		t.Error("reverse should not keep original direction")
	}
	// Double reverse is the original.
	rr := r.Reverse()
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		gd, gw := g.OutEdges(v)
		rd, rw := rr.OutEdges(v)
		if len(gd) != len(rd) {
			t.Fatalf("double reverse degree mismatch at %d", v)
		}
		for i := range gd {
			if gd[i] != rd[i] || gw[i] != rw[i] {
				t.Fatalf("double reverse edge mismatch at %d", v)
			}
		}
	}
}

func TestReverseProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 2+rng.Intn(30), 4, Independent)
		r := g.Reverse()
		for _, e := range g.Edges() {
			if w, ok := r.EdgeWeight(e.Dst, e.Src); !ok || w != e.W {
				return false
			}
		}
		return r.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInduce(t *testing.T) {
	g := buildTiny(t)
	sub, mapping, err := g.Induce([]int32{0, 1, 2})
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d", sub.NumNodes())
	}
	// Edge 3->0 crosses the cut and must be dropped; 0->1, 0->2, 1->2 stay.
	if sub.NumEdges() != 3 {
		t.Fatalf("induced edges = %d, want 3", sub.NumEdges())
	}
	for newID, oldID := range mapping {
		if sub.NodeWeight(int32(newID)) != g.NodeWeight(oldID) {
			t.Errorf("weight mismatch at new id %d", newID)
		}
	}
}

func TestInduceReordersIDs(t *testing.T) {
	g := buildTiny(t)
	sub, mapping, err := g.Induce([]int32{2, 0})
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	if mapping[0] != 2 || mapping[1] != 0 {
		t.Fatalf("mapping = %v", mapping)
	}
	// Original 0->2 becomes 1->0.
	if w, ok := sub.EdgeWeight(1, 0); !ok || w != 0.25 {
		t.Errorf("EdgeWeight(1,0) = %g,%v", w, ok)
	}
}

func TestInduceErrors(t *testing.T) {
	g := buildTiny(t)
	if _, _, err := g.Induce([]int32{0, 99}); err == nil {
		t.Error("want unknown-node error")
	}
	if _, _, err := g.Induce([]int32{0, 0}); err == nil {
		t.Error("want duplicate error")
	}
}

func TestInduceKeepsLabels(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddLabeledNode("x", 0.5)
	b.AddLabeledNode("y", 0.3)
	b.AddLabeledNode("z", 0.2)
	b.AddLabeledEdge("x", "z", 0.4)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sub, _, err := g.Induce([]int32{2, 0})
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	if sub.Label(0) != "z" || sub.Label(1) != "x" {
		t.Errorf("labels = %q,%q", sub.Label(0), sub.Label(1))
	}
	if w, ok := sub.EdgeWeight(1, 0); !ok || w != 0.4 {
		t.Errorf("edge x->z lost: %g,%v", w, ok)
	}
}

func TestTopNodesByWeight(t *testing.T) {
	g := buildTiny(t) // weights 0.4 0.3 0.2 0.05 0.05
	top := g.TopNodesByWeight(3)
	want := []int32{0, 1, 2}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top = %v, want %v", top, want)
		}
	}
	// Tie at 0.05 breaks toward smaller id.
	all := g.TopNodesByWeight(5)
	if all[3] != 3 || all[4] != 4 {
		t.Errorf("tie-break wrong: %v", all)
	}
	if got := g.TopNodesByWeight(99); len(got) != 5 {
		t.Errorf("overlong request should clamp, got %d", len(got))
	}
}

func TestRenormalize(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddNode(2)
	b.AddNode(2)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rn, err := g.Renormalize()
	if err != nil {
		t.Fatalf("Renormalize: %v", err)
	}
	if w := rn.NodeWeight(0); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("renormalized weight = %g", w)
	}
	if g.NodeWeight(0) != 2 {
		t.Error("original mutated")
	}
	b2 := NewBuilder(0, 0)
	b2.AddNode(0)
	g2, _ := b2.Build(BuildOptions{})
	if _, err := g2.Renormalize(); err == nil {
		t.Error("zero-weight renormalize should fail")
	}
}

func TestClosureAddsTwoHopEdges(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddNode(0.5)
	b.AddNode(0.3)
	b.AddNode(0.2)
	b.AddEdge(0, 1, 0.8)
	b.AddEdge(1, 2, 0.5)
	g, err := b.Build(BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	closed, err := g.Closure(ClosureOptions{Variant: Independent, MaxDepth: 1})
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	w, ok := closed.EdgeWeight(0, 2)
	if !ok {
		t.Fatal("closure missing composed edge 0->2")
	}
	if math.Abs(w-0.4) > 1e-12 {
		t.Errorf("composed weight = %g, want 0.4", w)
	}
	// Direct edges unchanged.
	if w, _ := closed.EdgeWeight(0, 1); w != 0.8 {
		t.Errorf("direct edge changed: %g", w)
	}
}

func TestClosureCombinesWithDirectEdge(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddNode(0.5)
	b.AddNode(0.3)
	b.AddNode(0.2)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(0, 2, 0.5)
	g, _ := b.Build(BuildOptions{})
	closed, err := g.Closure(ClosureOptions{Variant: Independent, MaxDepth: 1})
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	// OR-combination: 1-(1-0.5)(1-0.25) = 0.625.
	w, _ := closed.EdgeWeight(0, 2)
	if math.Abs(w-0.625) > 1e-12 {
		t.Errorf("combined weight = %g, want 0.625", w)
	}
}

func TestClosureNormalizedCapsOutSum(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddNode(0.5)
	b.AddNode(0.3)
	b.AddNode(0.2)
	b.AddEdge(0, 1, 0.9)
	b.AddEdge(1, 2, 0.9)
	b.AddEdge(0, 2, 0.9) // direct + composed would exceed 1
	g, _ := b.Build(BuildOptions{})
	closed, err := g.Closure(ClosureOptions{Variant: Normalized, MaxDepth: 1})
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	if err := closed.Validate(ValidateOptions{Variant: Normalized}); err != nil {
		t.Errorf("closure violates normalized invariant: %v", err)
	}
}

func TestClosureSkipsCyclesBackToSource(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddNode(0.5)
	b.AddNode(0.5)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 0, 0.5)
	g, _ := b.Build(BuildOptions{})
	closed, err := g.Closure(ClosureOptions{Variant: Independent, MaxDepth: 3})
	if err != nil {
		t.Fatalf("Closure: %v", err)
	}
	if err := closed.Validate(ValidateOptions{}); err != nil {
		t.Errorf("closure produced self loops: %v", err)
	}
}

func TestStats(t *testing.T) {
	g := buildTiny(t)
	s := ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 4 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if math.Abs(s.TotalWeight-1) > 1e-12 {
		t.Errorf("TotalWeight = %g", s.TotalWeight)
	}
	if s.MaxNodeW != 0.4 {
		t.Errorf("MaxNodeW = %g", s.MaxNodeW)
	}
	if s.MaxInDegree != 2 || s.MaxOutDegree != 2 {
		t.Errorf("degrees: %+v", s)
	}
	if s.Isolated != 1 {
		t.Errorf("Isolated = %d, want 1 (node 4)", s.Isolated)
	}
	if s.MaxOutWeightSum != 1.0 { // node 1 has single out-edge weight 1.0
		t.Errorf("MaxOutWeightSum = %g", s.MaxOutWeightSum)
	}
	if s.GiniNodeWeight <= 0 || s.GiniNodeWeight >= 1 {
		t.Errorf("Gini = %g outside (0,1)", s.GiniNodeWeight)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestGiniUniform(t *testing.T) {
	b := NewBuilder(4, 0)
	for i := 0; i < 4; i++ {
		b.AddNode(0.25)
	}
	g, _ := b.Build(BuildOptions{})
	if s := ComputeStats(g); math.Abs(s.GiniNodeWeight) > 1e-9 {
		t.Errorf("uniform Gini = %g, want 0", s.GiniNodeWeight)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildTiny(t)
	zero, buckets := g.DegreeHistogram()
	// In-degrees: 1,1,2,0,0 -> zero=2, bucket0 (deg 1)=2, bucket1 (deg 2-3)=1.
	if zero != 2 {
		t.Errorf("zero = %d", zero)
	}
	if len(buckets) < 2 || buckets[0] != 2 || buckets[1] != 1 {
		t.Errorf("buckets = %v", buckets)
	}
}
