// Package graph provides the preference-graph substrate used throughout the
// library: a read-only, weighted, directed graph stored in compressed sparse
// row (CSR) form, with both forward (outgoing) and reverse (incoming)
// adjacency so that cover computations can iterate over in-neighbors in
// O(d_in(v)) as required by the paper's Algorithms 2-5.
//
// A preference graph (paper Section 2) assigns every node v a weight
// W(v) in [0,1] (its purchase popularity; all node weights sum to 1) and
// every edge (v,u) a weight W(v,u) in (0,1] (the probability that u
// satisfies a request for v as an alternative).
//
// Graphs are built with a Builder and immutable afterwards, which makes them
// safe for concurrent readers without locking.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Weight epsilon used when validating stochastic constraints. Clickstream
// derived weights are ratios of counts, so they are exact in binary only up
// to rounding; validation must not reject them for float noise.
const Eps = 1e-9

// Graph is an immutable weighted directed graph in CSR form.
//
// Node identifiers are dense integers in [0, NumNodes()). An optional string
// label can be attached to every node (item SKUs in the e-commerce setting);
// labels, when present, are unique.
type Graph struct {
	nodeW  []float64
	labels []string         // empty if unlabeled
	byName map[string]int32 // nil if unlabeled

	// Outgoing adjacency: edges leaving v are
	// (outDst[i], outW[i]) for i in [outStart[v], outStart[v+1]).
	outStart []int64
	outDst   []int32
	outW     []float64

	// Incoming adjacency: edges entering v are
	// (inSrc[i], inW[i]) for i in [inStart[v], inStart[v+1]).
	inStart []int64
	inSrc   []int32
	inW     []float64
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodeW) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outDst) }

// NodeWeight returns W(v), the request probability of node v.
func (g *Graph) NodeWeight(v int32) float64 { return g.nodeW[v] }

// NodeWeights returns the underlying node-weight slice. The caller must
// treat it as read-only.
func (g *Graph) NodeWeights() []float64 { return g.nodeW }

// TotalWeight returns the sum of all node weights (1 for a well-formed
// preference graph, but reductions produce unnormalized graphs).
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, w := range g.nodeW {
		s += w
	}
	return s
}

// Labeled reports whether nodes carry string labels.
func (g *Graph) Labeled() bool { return len(g.labels) > 0 }

// Label returns the label of node v, or a synthesized "#<v>" when the graph
// is unlabeled.
func (g *Graph) Label(v int32) string {
	if len(g.labels) == 0 {
		return fmt.Sprintf("#%d", v)
	}
	return g.labels[v]
}

// Lookup returns the node with the given label.
func (g *Graph) Lookup(label string) (int32, bool) {
	if g.byName == nil {
		return 0, false
	}
	v, ok := g.byName[label]
	return v, ok
}

// OutDegree returns the number of outgoing edges of v (the number of
// alternatives consumers consider for v).
func (g *Graph) OutDegree(v int32) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// InDegree returns the number of incoming edges of v (the number of items
// for which v is an alternative).
func (g *Graph) InDegree(v int32) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// MaxInDegree returns D, the maximum in-degree, the parameter in the paper's
// O(nkD) complexity bound.
func (g *Graph) MaxInDegree() int {
	max := 0
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if d := g.InDegree(v); d > max {
			max = d
		}
	}
	return max
}

// OutEdges returns the destinations and weights of v's outgoing edges. The
// returned slices alias the graph's storage and must be treated as
// read-only.
func (g *Graph) OutEdges(v int32) ([]int32, []float64) {
	lo, hi := g.outStart[v], g.outStart[v+1]
	return g.outDst[lo:hi], g.outW[lo:hi]
}

// InEdges returns the sources and weights of v's incoming edges. The
// returned slices alias the graph's storage and must be treated as
// read-only.
func (g *Graph) InEdges(v int32) ([]int32, []float64) {
	lo, hi := g.inStart[v], g.inStart[v+1]
	return g.inSrc[lo:hi], g.inW[lo:hi]
}

// InCSR exposes the raw reverse-adjacency CSR arrays: the edges entering v
// are (src[i], w[i]) for i in [start[v], start[v+1]). Data-oriented kernels
// use this to iterate edge ranges without the per-node slice headers
// InEdges materializes. The returned slices alias the graph's storage and
// must be treated as read-only.
func (g *Graph) InCSR() (start []int64, src []int32, w []float64) {
	return g.inStart, g.inSrc, g.inW
}

// EdgeWeight returns W(v,u) and whether the edge (v,u) exists. Edges within
// a node's adjacency are sorted by destination, so this is a binary search.
func (g *Graph) EdgeWeight(v, u int32) (float64, bool) {
	lo, hi := g.outStart[v], g.outStart[v+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch d := g.outDst[mid]; {
		case d == u:
			return g.outW[mid], true
		case d < u:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}

// OutWeightSum returns the sum of v's outgoing edge weights. Under the
// Normalized variant this must be at most 1.
func (g *Graph) OutWeightSum(v int32) float64 {
	lo, hi := g.outStart[v], g.outStart[v+1]
	var s float64
	for i := lo; i < hi; i++ {
		s += g.outW[i]
	}
	return s
}

// Variant selects the probabilistic interpretation of edge weights
// (paper Sections 2.1 and 2.2).
type Variant uint8

const (
	// Independent (IPC_k): alternative suitability events are independent;
	// a request for an absent v is matched with probability
	// 1 - prod_{u in R_v(S)} (1 - W(v,u)).
	Independent Variant = iota
	// Normalized (NPC_k): each consumer accepts at most one alternative;
	// out-weights sum to at most 1 and a request for an absent v is matched
	// with probability sum_{u in R_v(S)} W(v,u).
	Normalized
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Independent:
		return "independent"
	case Normalized:
		return "normalized"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// ParseVariant parses "independent"/"normalized" (case-sensitive) and the
// short forms "i"/"n".
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "independent", "i", "ipc":
		return Independent, nil
	case "normalized", "n", "npc":
		return Normalized, nil
	}
	return 0, fmt.Errorf("graph: unknown variant %q (want independent or normalized)", s)
}

// Validation errors.
var (
	ErrNodeWeightRange  = errors.New("graph: node weight outside [0,1]")
	ErrEdgeWeightRange  = errors.New("graph: edge weight outside (0,1]")
	ErrNotSimplex       = errors.New("graph: node weights do not sum to 1")
	ErrOutWeightExceeds = errors.New("graph: normalized variant requires per-node outgoing weight sum <= 1")
	ErrSelfLoop         = errors.New("graph: self loop")
)

// ValidateOptions controls Validate.
type ValidateOptions struct {
	// Variant to validate against. Normalized additionally checks that
	// every node's outgoing weights sum to at most 1.
	Variant Variant
	// RequireSimplex requires node weights to sum to 1 (within Eps*n).
	RequireSimplex bool
	// AllowSelfLoops permits edges (v,v). Preference graphs have no use for
	// them (a retained node covers itself with probability 1), but the
	// VC_k reduction of Theorem 3.1 introduces them.
	AllowSelfLoops bool
}

// Validate checks the preference-graph invariants of Section 2 and returns
// the first violation found.
func (g *Graph) Validate(opts ValidateOptions) error {
	var sum float64
	for v, w := range g.nodeW {
		if w < -Eps || w > 1+Eps || math.IsNaN(w) {
			return fmt.Errorf("%w: node %d has weight %g", ErrNodeWeightRange, v, w)
		}
		sum += w
	}
	if opts.RequireSimplex {
		tol := Eps * float64(g.NumNodes()+1)
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("%w: sum is %g", ErrNotSimplex, sum)
		}
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		var out float64
		for i, u := range dsts {
			w := ws[i]
			if w <= 0 || w > 1+Eps || math.IsNaN(w) {
				return fmt.Errorf("%w: edge (%d,%d) has weight %g", ErrEdgeWeightRange, v, u, w)
			}
			if u == v && !opts.AllowSelfLoops {
				return fmt.Errorf("%w: node %d", ErrSelfLoop, v)
			}
			out += w
		}
		if opts.Variant == Normalized {
			tol := Eps * float64(len(dsts)+1)
			if out > 1+tol {
				return fmt.Errorf("%w: node %d has outgoing sum %g", ErrOutWeightExceeds, v, out)
			}
		}
	}
	return nil
}

// Edge is a materialized directed edge, used by the Builder and codecs.
type Edge struct {
	Src, Dst int32
	W        float64
}

// Edges returns all edges in (src, dst) order. It allocates; intended for
// tests, codecs and small graphs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			out = append(out, Edge{Src: v, Dst: u, W: ws[i]})
		}
	}
	return out
}
