package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The TSV codec stores one record per line:
//
//	# comments and blank lines are ignored
//	node <TAB> <label> <TAB> <weight>
//	edge <TAB> <srcLabel> <TAB> <dstLabel> <TAB> <weight>
//
// Node lines must precede the edges that reference them. The format is
// deliberately trivial so exported graphs can be inspected and diffed.

// WriteTSV serializes g in the TSV format.
func WriteTSV(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# prefcover graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if _, err := fmt.Fprintf(bw, "node\t%s\t%s\n", g.Label(v), formatW(g.NodeWeight(v))); err != nil {
			return err
		}
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			if _, err := fmt.Fprintf(bw, "edge\t%s\t%s\t%s\n", g.Label(v), g.Label(u), formatW(ws[i])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func formatW(w float64) string { return strconv.FormatFloat(w, 'g', -1, 64) }

// ReadTSV parses the TSV format. Build options allow duplicate handling and
// weight normalization at load time.
func ReadTSV(r io.Reader, opts BuildOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	b := NewBuilder(0, 0)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: tsv line %d: want 3 fields for node, got %d", line, len(fields))
			}
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: tsv line %d: bad node weight: %v", line, err)
			}
			b.AddLabeledNode(fields[1], w)
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: tsv line %d: want 4 fields for edge, got %d", line, len(fields))
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: tsv line %d: bad edge weight: %v", line, err)
			}
			src, ok := b.lookup(fields[1])
			if !ok {
				return nil, fmt.Errorf("graph: tsv line %d: edge references undeclared node %q", line, fields[1])
			}
			dst, ok := b.lookup(fields[2])
			if !ok {
				return nil, fmt.Errorf("graph: tsv line %d: edge references undeclared node %q", line, fields[2])
			}
			b.AddEdge(src, dst, w)
		default:
			return nil, fmt.Errorf("graph: tsv line %d: unknown record type %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(opts)
}

func (b *Builder) lookup(label string) (int32, bool) {
	if b.byName == nil {
		return 0, false
	}
	id, ok := b.byName[label]
	return id, ok
}

// jsonGraph is the JSON document shape.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	Label  string  `json:"label,omitempty"`
	Weight float64 `json:"weight"`
}

type jsonEdge struct {
	Src    int32   `json:"src"`
	Dst    int32   `json:"dst"`
	Weight float64 `json:"weight"`
}

// WriteJSON serializes g as a single JSON document. Edges reference nodes by
// dense index, keeping documents compact even for unlabeled graphs.
func WriteJSON(w io.Writer, g *Graph) error {
	doc := jsonGraph{
		Nodes: make([]jsonNode, g.NumNodes()),
		Edges: make([]jsonEdge, 0, g.NumEdges()),
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		node := jsonNode{Weight: g.NodeWeight(v)}
		if g.Labeled() {
			node.Label = g.Label(v)
		}
		doc.Nodes[v] = node
		dsts, ws := g.OutEdges(v)
		for i, u := range dsts {
			doc.Edges = append(doc.Edges, jsonEdge{Src: v, Dst: u, Weight: ws[i]})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadJSON parses a document produced by WriteJSON.
func ReadJSON(r io.Reader, opts BuildOptions) (*Graph, error) {
	var doc jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: decoding json: %w", err)
	}
	b := NewBuilder(len(doc.Nodes), len(doc.Edges))
	labeled := len(doc.Nodes) > 0 && doc.Nodes[0].Label != ""
	for i, nd := range doc.Nodes {
		if labeled {
			if nd.Label == "" {
				return nil, fmt.Errorf("graph: json node %d missing label in labeled graph", i)
			}
			b.AddLabeledNode(nd.Label, nd.Weight)
		} else {
			b.AddNode(nd.Weight)
		}
	}
	for i, e := range doc.Edges {
		if e.Src < 0 || int(e.Src) >= len(doc.Nodes) || e.Dst < 0 || int(e.Dst) >= len(doc.Nodes) {
			return nil, fmt.Errorf("graph: json edge %d references unknown node", i)
		}
		b.AddEdge(e.Src, e.Dst, e.Weight)
	}
	return b.Build(opts)
}
