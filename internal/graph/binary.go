package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for large graphs (millions of nodes). Layout, all
// little-endian:
//
//	magic   [4]byte  "PCG1"
//	flags   uint32   bit 0: labeled
//	n       uint64   node count
//	m       uint64   edge count
//	nodeW   n * float64
//	outStart (n+1) * int64
//	outDst  m * int32
//	outW    m * float64
//	labels  (if labeled) n * (uvarint length + bytes)
//
// The incoming CSR is rebuilt on load; it is cheaper to recompute than to
// double the file size.

var binaryMagic = [4]byte{'P', 'C', 'G', '1'}

const flagLabeled = 1 << 0

// WriteBinary serializes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var flags uint32
	if g.Labeled() {
		flags |= flagLabeled
	}
	if err := writeLE(bw, flags, uint64(g.NumNodes()), uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, x := range g.nodeW {
		if err := writeLE(bw, math.Float64bits(x)); err != nil {
			return err
		}
	}
	for _, x := range g.outStart {
		if err := writeLE(bw, uint64(x)); err != nil {
			return err
		}
	}
	for _, x := range g.outDst {
		if err := writeLE(bw, uint32(x)); err != nil {
			return err
		}
	}
	for _, x := range g.outW {
		if err := writeLE(bw, math.Float64bits(x)); err != nil {
			return err
		}
	}
	if g.Labeled() {
		var buf [binary.MaxVarintLen64]byte
		for _, label := range g.labels {
			n := binary.PutUvarint(buf[:], uint64(len(label)))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			if _, err := bw.WriteString(label); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeLE(w io.Writer, values ...interface{}) error {
	for _, v := range values {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// maxBinaryCount bounds node/edge counts to catch corrupt headers before
// attempting a huge allocation.
const maxBinaryCount = 1 << 33

// binaryChunk is how many array elements are read per allocation step, so
// a header claiming billions of entries cannot force a giant allocation
// before the (truncated) stream runs dry.
const binaryChunk = 1 << 16

// ReadBinary parses the binary format and reconstructs the incoming CSR.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (want %q)", magic[:], binaryMagic[:])
	}
	var flags uint32
	var n, m uint64
	if err := readLE(br, &flags, &n, &m); err != nil {
		return nil, err
	}
	if n == 0 || n > maxBinaryCount || m > maxBinaryCount {
		return nil, fmt.Errorf("graph: implausible binary header n=%d m=%d", n, m)
	}
	g := &Graph{}
	var err error
	if g.nodeW, err = readFloat64s(br, n); err != nil {
		return nil, err
	}
	if g.outStart, err = readInt64s(br, n+1); err != nil {
		return nil, err
	}
	if g.outDst, err = readInt32s(br, m); err != nil {
		return nil, err
	}
	if g.outW, err = readFloat64s(br, m); err != nil {
		return nil, err
	}
	if g.outStart[0] != 0 || g.outStart[n] != int64(m) {
		return nil, fmt.Errorf("graph: corrupt CSR offsets (start=%d end=%d m=%d)", g.outStart[0], g.outStart[n], m)
	}
	for i := uint64(0); i < n; i++ {
		if g.outStart[i] > g.outStart[i+1] {
			return nil, fmt.Errorf("graph: corrupt CSR offsets at node %d", i)
		}
	}
	for _, d := range g.outDst {
		if d < 0 || uint64(d) >= n {
			return nil, fmt.Errorf("graph: edge destination %d out of range", d)
		}
	}
	if flags&flagLabeled != 0 {
		g.labels = make([]string, n)
		g.byName = make(map[string]int32, n)
		for i := uint64(0); i < n; i++ {
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: reading label %d: %w", i, err)
			}
			if l > 1<<20 {
				return nil, fmt.Errorf("graph: implausible label length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("graph: reading label %d: %w", i, err)
			}
			g.labels[i] = string(buf)
			if _, dup := g.byName[g.labels[i]]; dup {
				return nil, fmt.Errorf("graph: duplicate label %q", g.labels[i])
			}
			g.byName[g.labels[i]] = int32(i)
		}
	}
	g.buildIncoming()
	return g, nil
}

func readLE(r io.Reader, targets ...interface{}) error {
	for _, t := range targets {
		if err := binary.Read(r, binary.LittleEndian, t); err != nil {
			return fmt.Errorf("graph: reading binary body: %w", err)
		}
	}
	return nil
}

// readFloat64s reads count float64 values, growing the slice chunk by
// chunk so truncated input fails before large allocations.
func readFloat64s(r io.Reader, count uint64) ([]float64, error) {
	out := make([]float64, 0, min64(count, binaryChunk))
	for uint64(len(out)) < count {
		step := min64(count-uint64(len(out)), binaryChunk)
		chunk := make([]float64, step)
		if err := readLE(r, &chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readInt64s(r io.Reader, count uint64) ([]int64, error) {
	out := make([]int64, 0, min64(count, binaryChunk))
	for uint64(len(out)) < count {
		step := min64(count-uint64(len(out)), binaryChunk)
		chunk := make([]int64, step)
		if err := readLE(r, &chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func readInt32s(r io.Reader, count uint64) ([]int32, error) {
	out := make([]int32, 0, min64(count, binaryChunk))
	for uint64(len(out)) < count {
		step := min64(count-uint64(len(out)), binaryChunk)
		chunk := make([]int32, step)
		if err := readLE(r, &chunk); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// buildIncoming recomputes the incoming CSR from the outgoing one.
func (g *Graph) buildIncoming() {
	n := g.NumNodes()
	m := len(g.outDst)
	g.inStart = make([]int64, n+1)
	g.inSrc = make([]int32, m)
	g.inW = make([]float64, m)
	for _, d := range g.outDst {
		g.inStart[d+1]++
	}
	for i := 1; i <= n; i++ {
		g.inStart[i] += g.inStart[i-1]
	}
	next := make([]int64, n)
	copy(next, g.inStart[:n])
	for v := int32(0); v < int32(n); v++ {
		lo, hi := g.outStart[v], g.outStart[v+1]
		for i := lo; i < hi; i++ {
			d := g.outDst[i]
			pos := next[d]
			next[d]++
			g.inSrc[pos] = v
			g.inW[pos] = g.outW[i]
		}
	}
}
