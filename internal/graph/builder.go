package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DuplicatePolicy decides what Build does when the same (src,dst) edge is
// added more than once.
type DuplicatePolicy uint8

const (
	// DupError rejects duplicate edges.
	DupError DuplicatePolicy = iota
	// DupKeepMax keeps the largest weight.
	DupKeepMax
	// DupSum adds weights (natural for the Normalized variant, where edge
	// weights are disjoint-event probabilities).
	DupSum
	// DupCombine combines weights as independent events,
	// w = 1-(1-w1)(1-w2) (natural for the Independent variant).
	DupCombine
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is ready to use. Builders are not safe for concurrent use.
type Builder struct {
	weights []float64
	labels  []string
	byName  map[string]int32
	edges   []Edge
	err     error
}

// NewBuilder returns a Builder preallocated for the given node and edge
// counts (either may be zero).
func NewBuilder(nodeHint, edgeHint int) *Builder {
	return &Builder{
		weights: make([]float64, 0, nodeHint),
		edges:   make([]Edge, 0, edgeHint),
	}
}

// Err returns the first error recorded by any Add call, if any. Build also
// returns it, so checking Err between calls is optional.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// AddNode appends an unlabeled node with weight w and returns its id.
func (b *Builder) AddNode(w float64) int32 {
	id := int32(len(b.weights))
	b.weights = append(b.weights, w)
	if b.byName != nil {
		b.labels = append(b.labels, "")
		b.fail(fmt.Errorf("graph: mixing labeled and unlabeled nodes (node %d)", id))
	}
	return id
}

// AddLabeledNode appends a node with a unique label and weight w.
func (b *Builder) AddLabeledNode(label string, w float64) int32 {
	if b.byName == nil {
		if len(b.weights) > 0 {
			b.fail(fmt.Errorf("graph: mixing labeled and unlabeled nodes (label %q)", label))
		}
		b.byName = make(map[string]int32)
	}
	if prev, dup := b.byName[label]; dup {
		b.fail(fmt.Errorf("graph: duplicate node label %q (node %d)", label, prev))
		return prev
	}
	id := int32(len(b.weights))
	b.weights = append(b.weights, w)
	b.labels = append(b.labels, label)
	b.byName[label] = id
	return id
}

// Node returns the id for label, creating the node with weight 0 if absent.
// Useful for incremental construction where weights are set afterwards.
func (b *Builder) Node(label string) int32 {
	if b.byName != nil {
		if id, ok := b.byName[label]; ok {
			return id
		}
	}
	return b.AddLabeledNode(label, 0)
}

// SetWeight overwrites the weight of node v.
func (b *Builder) SetWeight(v int32, w float64) {
	if v < 0 || int(v) >= len(b.weights) {
		b.fail(fmt.Errorf("graph: SetWeight on unknown node %d", v))
		return
	}
	b.weights[v] = w
}

// AddWeight adds delta to the weight of node v.
func (b *Builder) AddWeight(v int32, delta float64) {
	if v < 0 || int(v) >= len(b.weights) {
		b.fail(fmt.Errorf("graph: AddWeight on unknown node %d", v))
		return
	}
	b.weights[v] += delta
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.weights) }

// AddEdge appends the directed edge (src,dst) with weight w.
func (b *Builder) AddEdge(src, dst int32, w float64) {
	n := int32(len(b.weights))
	if src < 0 || src >= n || dst < 0 || dst >= n {
		b.fail(fmt.Errorf("graph: edge (%d,%d) references unknown node (have %d nodes)", src, dst, n))
		return
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, W: w})
}

// AddLabeledEdge appends an edge between two labeled nodes, creating the
// nodes (with weight 0) if they do not exist yet.
func (b *Builder) AddLabeledEdge(src, dst string, w float64) {
	b.AddEdge(b.Node(src), b.Node(dst), w)
}

// BuildOptions controls Build.
type BuildOptions struct {
	// Duplicates selects the duplicate-edge policy. Default DupError.
	Duplicates DuplicatePolicy
	// NormalizeWeights rescales node weights to sum to 1. Build fails if
	// the current sum is 0.
	NormalizeWeights bool
	// DropZeroEdges silently discards edges with weight <= 0 instead of
	// failing validation later. Clickstream adaptation can produce zero
	// counts that should simply mean "no edge".
	DropZeroEdges bool
}

// Build finalizes the graph. The Builder can be reused afterwards only by
// discarding it; Build hands its internal slices to the Graph.
func (b *Builder) Build(opts BuildOptions) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.weights)
	if n == 0 {
		return nil, errors.New("graph: cannot build an empty graph")
	}
	if opts.NormalizeWeights {
		var sum float64
		for _, w := range b.weights {
			sum += w
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, fmt.Errorf("graph: cannot normalize node weights with sum %g", sum)
		}
		for i := range b.weights {
			b.weights[i] /= sum
		}
	}

	edges := b.edges
	if opts.DropZeroEdges {
		kept := edges[:0]
		for _, e := range edges {
			if e.W > 0 {
				kept = append(kept, e)
			}
		}
		edges = kept
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	deduped, err := dedupEdges(edges, opts.Duplicates)
	if err != nil {
		return nil, err
	}

	g := &Graph{
		nodeW:  b.weights,
		labels: b.labels,
		byName: b.byName,
	}
	g.outStart, g.outDst, g.outW = buildCSR(n, deduped, false)
	// Re-sort by (dst, src) for the reverse index.
	sort.Slice(deduped, func(i, j int) bool {
		if deduped[i].Dst != deduped[j].Dst {
			return deduped[i].Dst < deduped[j].Dst
		}
		return deduped[i].Src < deduped[j].Src
	})
	g.inStart, g.inSrc, g.inW = buildCSR(n, deduped, true)
	return g, nil
}

// dedupEdges assumes edges sorted by (src,dst) and applies the policy
// in place, returning the compacted slice.
func dedupEdges(edges []Edge, policy DuplicatePolicy) ([]Edge, error) {
	if len(edges) == 0 {
		return edges, nil
	}
	out := edges[:1]
	for _, e := range edges[1:] {
		last := &out[len(out)-1]
		if e.Src != last.Src || e.Dst != last.Dst {
			out = append(out, e)
			continue
		}
		switch policy {
		case DupError:
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", e.Src, e.Dst)
		case DupKeepMax:
			if e.W > last.W {
				last.W = e.W
			}
		case DupSum:
			last.W += e.W
		case DupCombine:
			last.W = 1 - (1-last.W)*(1-e.W)
		default:
			return nil, fmt.Errorf("graph: unknown duplicate policy %d", policy)
		}
	}
	return out, nil
}

// buildCSR lays out edges (sorted by the grouping endpoint) into CSR arrays.
// When reverse is true the grouping endpoint is Dst and the stored endpoint
// is Src; otherwise grouping is Src and stored is Dst.
func buildCSR(n int, edges []Edge, reverse bool) ([]int64, []int32, []float64) {
	start := make([]int64, n+1)
	other := make([]int32, len(edges))
	w := make([]float64, len(edges))
	for _, e := range edges {
		if reverse {
			start[e.Dst+1]++
		} else {
			start[e.Src+1]++
		}
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	// Edges are sorted by the grouping endpoint, so a single linear pass
	// fills each bucket in order.
	for i, e := range edges {
		if reverse {
			other[i] = e.Src
		} else {
			other[i] = e.Dst
		}
		w[i] = e.W
	}
	return start, other, w
}
