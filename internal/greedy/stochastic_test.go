package greedy_test

import (
	"math/rand"
	"reflect"
	"testing"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	. "prefcover/internal/greedy"
)

func TestStochasticOptionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graphtest.Random(rng, 10, 3, graph.Independent)
	if _, err := Solve(g, Options{Variant: graph.Independent, K: 2, StochasticEpsilon: 1.5}); err == nil {
		t.Error("epsilon >= 1 should fail")
	}
	if _, err := Solve(g, Options{Variant: graph.Independent, K: 2, StochasticEpsilon: -0.1}); err == nil {
		t.Error("negative epsilon should fail")
	}
	if _, err := Solve(g, Options{Variant: graph.Independent, K: 2, StochasticEpsilon: 0.1, Lazy: true}); err == nil {
		t.Error("lazy + stochastic should fail")
	}
}

func TestStochasticSelectsKItems(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graphtest.Random(rng, 100, 4, graph.Independent)
	sol, err := Solve(g, Options{Variant: graph.Independent, K: 30, StochasticEpsilon: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Order) != 30 {
		t.Fatalf("selected %d items", len(sol.Order))
	}
	seen := map[int32]bool{}
	for _, v := range sol.Order {
		if seen[v] {
			t.Fatal("duplicate selection")
		}
		seen[v] = true
	}
}

func TestStochasticDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphtest.Random(rng, 200, 4, graph.Independent)
	opts := Options{Variant: graph.Independent, K: 40, StochasticEpsilon: 0.2, Seed: 11}
	a, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Order, b.Order) {
		t.Error("same seed must reproduce the selection")
	}
}

// TestStochasticQuality: with a modest epsilon the stochastic cover stays
// close to the exact greedy cover. The theoretical bound is in
// expectation; the 0.85 factor below leaves generous slack so the test is
// seed-stable.
func TestStochasticQuality(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(rng, 150+rng.Intn(100), 4, graph.Independent)
		k := 10 + rng.Intn(30)
		exact, err := Solve(g, Options{Variant: graph.Independent, K: k})
		if err != nil {
			t.Fatal(err)
		}
		st, err := Solve(g, Options{Variant: graph.Independent, K: k, StochasticEpsilon: 0.1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if st.Cover < 0.85*exact.Cover {
			t.Errorf("seed %d: stochastic %g < 0.85 * exact %g", seed, st.Cover, exact.Cover)
		}
	}
}

// TestStochasticEvaluatesFewerGains verifies the O(n log 1/eps) total work
// claim against the scan strategy's O(nk).
func TestStochasticEvaluatesFewerGains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graphtest.Random(rng, 500, 4, graph.Independent)
	k := 100
	exact, err := Solve(g, Options{Variant: graph.Independent, K: k})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Solve(g, Options{Variant: graph.Independent, K: k, StochasticEpsilon: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.GainEvals*10 > exact.GainEvals {
		t.Errorf("stochastic evals %d not ≪ scan evals %d", st.GainEvals, exact.GainEvals)
	}
}

func TestStochasticThresholdMode(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graphtest.Random(rng, 200, 4, graph.Independent)
	sol, err := Solve(g, Options{Variant: graph.Independent, Threshold: 0.5, K: 150, StochasticEpsilon: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reached && sol.Cover < 0.5-1e-9 {
		t.Errorf("reached but cover %g", sol.Cover)
	}
}
