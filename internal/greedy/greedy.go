// Package greedy implements the paper's Algorithm 1: the incremental greedy
// scheme that solves both Preference Cover variants with approximation
// guarantees — (1 - 1/e), optimal, for the Independent variant (Theorem
// 4.1) and max{1 - 1/e, 1 - (1 - k/n)^2} for the Normalized variant
// (via the VC_k equivalence of Theorem 3.1).
//
// Three execution strategies produce identical selections:
//
//   - sequential scan: each iteration evaluates Gain for every node outside
//     S and picks the maximum (the literal Algorithm 1);
//   - parallel scan: the candidate set is chunked across a goroutine pool,
//     each worker finds a local argmax, and the results are merged — the
//     parallelization described in the paper's Performance Analysis
//     (complexity O(k + nkD/N) for N workers);
//   - lazy (CELF) evaluation: because C is monotone submodular in both
//     variants, stale upper bounds stored in a max-heap let most Gain
//     re-evaluations be skipped without changing the selection.
//
// Determinism: ties are broken toward the smaller node id under every
// strategy, so runs are reproducible and strategies are interchangeable.
//
// The solver also directly solves the paper's complementary minimization
// problem (smallest S with C(S) >= threshold) by running until the
// threshold is met instead of for k iterations — avoiding the O(log n)
// binary-search overhead a black-box reduction would cost.
package greedy

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"prefcover/internal/cover"
	"prefcover/internal/graph"
	"prefcover/internal/kernel"
)

// Options configures Solve.
type Options struct {
	// Variant selects the cover semantics.
	Variant graph.Variant
	// K is the retained-set budget. If K > 0 and Threshold == 0, exactly
	// min(K, n) nodes are selected.
	K int
	// Threshold, when > 0, switches to the complementary minimization
	// problem: selection stops as soon as C(S) >= Threshold. If K is also
	// > 0 it acts as a cap. Threshold must be <= 1.
	Threshold float64
	// Workers sets the parallel-scan width; <= 1 means sequential. Ignored
	// when Lazy is set (lazy evaluation is inherently sequential but
	// usually evaluates far fewer gains). For the kernel strategies it
	// sizes the chunk-parallel heap build instead (<= 0 means GOMAXPROCS).
	Workers int
	// Lazy enables CELF lazy evaluation.
	Lazy bool
	// Strategy, when non-empty, selects the execution strategy explicitly
	// (one of the Strategy* constants accepted by ParseStrategy),
	// superseding the Lazy and Workers selection rules. The data-oriented
	// kernels — StrategyLazyFlat and StrategySketch — are only reachable
	// this way. Mutually exclusive with StochasticEpsilon.
	Strategy string
	// StochasticEpsilon, when > 0, selects stochastic greedy ("lazier than
	// lazy"): each iteration samples ceil((n/K)·ln(1/ε)) candidates and
	// takes the best, achieving (1 - 1/e - ε) in expectation with O(n
	// log(1/ε)) total gain evaluations. Randomized: the selection depends
	// on Seed and generally differs from the deterministic strategies.
	// Mutually exclusive with Lazy. Must be < 1.
	StochasticEpsilon float64
	// Seed drives stochastic greedy's sampling. Ignored by the
	// deterministic strategies.
	Seed int64
	// Pinned lists items that must be retained regardless of gain —
	// contractual must-stock SKUs, loss leaders, items under promotion.
	// They are added first (in the given order), count toward K, and the
	// greedy fill then optimizes around them. Duplicates are rejected.
	Pinned []int32
	// OnSelect, if non-nil, is invoked after every selection with the
	// 1-based step, the chosen node, its marginal gain, and C(S) so far.
	OnSelect func(step int, v int32, gain, cover float64)
	// Progress, if non-nil, receives a ProgressEvent after every selection
	// (pinned items included). It supersedes OnSelect with per-iteration
	// work counters; both hooks fire when both are set. The hook is called
	// synchronously from the solver goroutine and must not block.
	Progress func(ProgressEvent)
	// Ctx, if non-nil, allows cancellation. The solver polls it once per
	// iteration, once per worker chunk in the parallel scan, and
	// periodically inside lazy-heap rebuilds, so long solves return
	// promptly. On cancellation Solve returns the partial Solution built
	// so far (a valid greedy prefix, finalized with Cover and Coverage)
	// together with ctx.Err(); the partial solution has Reached == false.
	Ctx context.Context
}

// Solution is the solver output. Order lists retained nodes in selection
// order; because greedy is incremental, Order[:k'] is the greedy solution
// for every budget k' <= len(Order) (paper Section 3.2, Additional
// Advantages).
type Solution struct {
	Order []int32
	// Gains[i] is the marginal gain realized by Order[i].
	Gains []float64
	// Cover is C(S) for the full Order.
	Cover float64
	// Coverage[v] is the probability a request for v is matched (the
	// paper's I[v]/W(v) report).
	Coverage []float64
	// Reached reports whether the threshold was met (always true in pure
	// budget mode).
	Reached bool
	// GainEvals counts marginal-gain evaluations, the work measure used by
	// the lazy-vs-scan ablation.
	GainEvals int64
}

// Set returns the retained set as a membership slice.
func (s *Solution) Set(n int) []bool {
	out := make([]bool, n)
	for _, v := range s.Order {
		out[v] = true
	}
	return out
}

// PrefixCover returns C(Order[:k]) for every k in [0, len(Order)] using the
// recorded gains; PrefixCover()[k] is the cover of the size-k prefix.
func (s *Solution) PrefixCover() []float64 {
	out := make([]float64, len(s.Order)+1)
	for i, g := range s.Gains {
		out[i+1] = out[i] + g
	}
	return out
}

// Validate checks option sanity.
func (o *Options) Validate(n int) error {
	if o.K <= 0 && o.Threshold <= 0 {
		return errors.New("greedy: need K > 0 or Threshold > 0")
	}
	if o.K < 0 {
		return fmt.Errorf("greedy: negative K %d", o.K)
	}
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("greedy: threshold %g outside (0,1]", o.Threshold)
	}
	if o.StochasticEpsilon < 0 || o.StochasticEpsilon >= 1 {
		return fmt.Errorf("greedy: stochastic epsilon %g outside [0,1)", o.StochasticEpsilon)
	}
	if o.StochasticEpsilon > 0 && o.Lazy {
		return errors.New("greedy: Lazy and StochasticEpsilon are mutually exclusive")
	}
	if _, err := ParseStrategy(o.Strategy); err != nil {
		return err
	}
	if o.Strategy != "" && o.StochasticEpsilon > 0 {
		return errors.New("greedy: Strategy and StochasticEpsilon are mutually exclusive")
	}
	if n == 0 {
		return errors.New("greedy: empty graph")
	}
	if len(o.Pinned) > 0 {
		if o.K > 0 && len(o.Pinned) > o.K {
			return fmt.Errorf("greedy: %d pinned items exceed K=%d", len(o.Pinned), o.K)
		}
		seen := make(map[int32]bool, len(o.Pinned))
		for _, v := range o.Pinned {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("greedy: pinned item %d outside [0,%d)", v, n)
			}
			if seen[v] {
				return fmt.Errorf("greedy: pinned item %d listed twice", v)
			}
			seen[v] = true
		}
	}
	return nil
}

// Solve runs Algorithm 1 on g.
func Solve(g *graph.Graph, opts Options) (*Solution, error) {
	if err := opts.Validate(g.NumNodes()); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	maxPicks := opts.K
	if maxPicks <= 0 || maxPicks > n {
		maxPicks = n
	}
	strategy := opts.strategy()
	// The kernel strategies run on the flat pooled state; everything else
	// on the reference engine. Both satisfy the engine interface the solve
	// loop drives, and both compute bit-identical covers.
	var eng engine
	var ceng *cover.Engine
	var kst *kernel.State
	switch strategy {
	case StrategyLazyFlat, StrategySketch:
		kst = kernel.NewState(g, opts.Variant)
		defer kst.Release()
		eng = kst
	default:
		ceng = cover.NewEngine(g, opts.Variant)
		eng = ceng
	}
	sol := &Solution{
		Order: make([]int32, 0, maxPicks),
		Gains: make([]float64, 0, maxPicks),
	}
	ctx := opts.Ctx
	if err := ctxErr(ctx); err != nil {
		return finalize(sol, eng, n), err
	}

	// Must-stock items come first; pickers are constructed afterwards so
	// their initial gain snapshots account for what pins already cover.
	for _, v := range opts.Pinned {
		gain := eng.Add(v)
		sol.Order = append(sol.Order, v)
		sol.Gains = append(sol.Gains, gain)
		opts.notify(ProgressEvent{
			Step: len(sol.Order), Node: v, Gain: gain, Cover: eng.Cover(),
			Strategy: StrategyPinned, TotalEvals: sol.GainEvals,
			// Pins skip the pick, so no remaining-gain bound exists yet.
			MaxRemainingGain: BoundUnavailable,
		})
	}
	reachedEarly := opts.Threshold > 0 && eng.Cover() >= opts.Threshold-graph.Eps

	// Each pick also reports bound: an upper bound on the marginal gain of
	// any candidate still outside S after this selection (valid by
	// submodularity — gains only shrink), or BoundUnavailable when the
	// strategy cannot produce one cheaply. Solve forwards it as
	// ProgressEvent.MaxRemainingGain, which observers turn into the
	// f(OPT_k) <= C(S_i) + k·bound approximation certificate.
	var pick func() (v int32, gain, bound float64, ok bool, err error)
	var lazyHeapEvals func() int64 // nil unless a lazy variant
	switch strategy {
	case StrategyStochastic:
		sp := newStochasticPicker(ceng, sol, opts.K, opts.StochasticEpsilon, opts.Seed)
		pick = sp.pick
	case StrategyLazy:
		lz := newLazyPicker(ctx, ceng, sol)
		pick = lz.pick
		lazyHeapEvals = func() int64 { return lz.reevals }
	case StrategyLazyFlat, StrategySketch:
		var sk *kernel.Sketch
		if strategy == StrategySketch {
			var err error
			if sk, err = kernel.SketchFor(ctx, g, opts.Variant); err != nil {
				return finalize(sol, eng, n), err
			}
		}
		kp := kernel.NewPicker(ctx, kst, opts.Workers, sk)
		// The picker tracks exact-gain evaluations itself (the heap build
		// may be satisfied from the memoized base gains with zero evals);
		// sync its cumulative counter into the solution around every pick.
		last := kp.Evals()
		sol.GainEvals += last
		pick = func() (int32, float64, float64, bool, error) {
			v, gain, bound, ok, err := kp.Pick()
			now := kp.Evals()
			sol.GainEvals += now - last
			last = now
			return v, gain, bound, ok, err
		}
		lazyHeapEvals = kp.Reevals
	case StrategyParallel:
		pp := newParallelPicker(ctx, ceng, sol, opts.Workers)
		defer pp.close()
		pick = pp.pick
	default:
		pick = func() (int32, float64, float64, bool, error) { return scanPick(ctx, ceng, sol) }
	}

	for step := len(sol.Order) + 1; step <= maxPicks && !reachedEarly; step++ {
		if err := ctxErr(ctx); err != nil {
			return finalize(sol, eng, n), err
		}
		evalsBefore := sol.GainEvals
		var reevalsBefore int64
		if lazyHeapEvals != nil {
			reevalsBefore = lazyHeapEvals()
		}
		// Stage clocks run only when someone is listening: without a
		// Progress hook the loop takes no time.Now readings at all.
		var pickStart time.Time
		if opts.Progress != nil {
			pickStart = time.Now()
		}
		v, gain, bound, ok, err := pick()
		if err != nil {
			// Canceled mid-pick: the in-flight round is discarded, so the
			// selections made so far are exactly the deterministic prefix.
			return finalize(sol, eng, n), err
		}
		if !ok {
			break // all nodes retained
		}
		var evalTime, commitTime time.Duration
		if opts.Progress != nil {
			picked := time.Now()
			evalTime = picked.Sub(pickStart)
			eng.Add(v)
			commitTime = time.Since(picked)
		} else {
			eng.Add(v)
		}
		sol.Order = append(sol.Order, v)
		sol.Gains = append(sol.Gains, gain)
		ev := ProgressEvent{
			Step: step, Node: v, Gain: gain, Cover: eng.Cover(),
			Strategy:         strategy,
			Evaluated:        sol.GainEvals - evalsBefore,
			TotalEvals:       sol.GainEvals,
			EvalTime:         evalTime,
			CommitTime:       commitTime,
			MaxRemainingGain: bound,
		}
		if lazyHeapEvals != nil {
			ev.Reevaluated = lazyHeapEvals() - reevalsBefore
		}
		opts.notify(ev)
		if opts.Threshold > 0 && eng.Cover() >= opts.Threshold-graph.Eps {
			reachedEarly = true
		}
	}
	if opts.Threshold <= 0 || reachedEarly {
		sol.Reached = true
	}
	finalize(sol, eng, n)
	return sol, nil
}

// notify dispatches both observation hooks for one selection.
func (o *Options) notify(ev ProgressEvent) {
	if o.OnSelect != nil {
		o.OnSelect(ev.Step, ev.Node, ev.Gain, ev.Cover)
	}
	if o.Progress != nil {
		o.Progress(ev)
	}
}

// engine abstracts the incremental cover state the solve loop drives. Both
// the reference cover.Engine and the flat kernel.State satisfy it, and both
// produce bit-identical covers — the kernel differential suite holds them
// to that.
type engine interface {
	Add(v int32) float64
	Cover() float64
	ItemCoverage(v int32) float64
}

// finalize fills the solution fields derivable from engine state so that
// both complete and cancellation-truncated solutions report Cover and
// per-item Coverage for the prefix actually selected.
func finalize(sol *Solution, eng engine, n int) *Solution {
	sol.Cover = eng.Cover()
	sol.Coverage = make([]float64, n)
	for v := int32(0); v < int32(n); v++ {
		sol.Coverage[v] = eng.ItemCoverage(v)
	}
	return sol
}

// ctxErr is a non-blocking poll of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// cancelCheckStride bounds how much scan work happens between context
// polls inside a single pick: one poll per this many candidates keeps the
// overhead unmeasurable while capping cancellation latency to the cost of
// a few thousand gain evaluations.
const cancelCheckStride = 2048

// scanPick is the literal Algorithm 1 inner loop: evaluate every candidate.
// It tracks the top two gains; the runner-up is the remaining-gain bound —
// every candidate left outside S has current gain <= second-best, and by
// submodularity its future gain can only shrink further.
func scanPick(ctx context.Context, eng *cover.Engine, sol *Solution) (int32, float64, float64, bool, error) {
	n := int32(eng.Graph().NumNodes())
	best := int32(-1)
	bestGain := -1.0
	secondGain := 0.0 // gains are non-negative, so 0 bounds an empty rest
	for v := int32(0); v < n; v++ {
		if v%cancelCheckStride == 0 {
			if err := ctxErr(ctx); err != nil {
				return 0, 0, 0, false, err
			}
		}
		if eng.Retained(v) {
			continue
		}
		g := eng.Gain(v)
		sol.GainEvals++
		if g > bestGain {
			if bestGain > secondGain {
				secondGain = bestGain
			}
			best, bestGain = v, g
		} else if g > secondGain {
			secondGain = g
		}
	}
	if best < 0 {
		return 0, 0, 0, false, nil
	}
	return best, bestGain, secondGain, true, nil
}

// parallelPicker keeps a pool of workers that each scan a fixed stripe of
// the node space; pick broadcasts a round and merges local argmaxes. The
// stripes are static so per-round overhead is two channel operations per
// worker.
type parallelPicker struct {
	ctx     context.Context
	eng     *cover.Engine
	sol     *Solution
	workers int
	start   []chan struct{}
	results chan localBest
	wg      sync.WaitGroup
	closed  bool
}

type localBest struct {
	v    int32
	gain float64
	// gain2 is the stripe's runner-up gain; merging stripe top-twos yields
	// the global second-best, the remaining-gain bound after the pick.
	gain2 float64
	evals int64
	// canceled marks a stripe abandoned because the context fired; the
	// whole round is then discarded so the selection stays deterministic.
	canceled bool
}

func newParallelPicker(ctx context.Context, eng *cover.Engine, sol *Solution, workers int) *parallelPicker {
	n := eng.Graph().NumNodes()
	if workers < 2 {
		// Reachable via an explicit Strategy without a Workers setting; a
		// single stripe is just the sequential scan with extra steps, but
		// stays correct.
		workers = runtime.GOMAXPROCS(0)
		if workers < 1 {
			workers = 1
		}
	}
	if workers > n {
		workers = n
	}
	if workers > 8*runtime.NumCPU() {
		// More goroutines than this adds scheduling overhead with no
		// parallelism left to exploit; keep the requested value only up to
		// a generous multiple of the core count.
		workers = 8 * runtime.NumCPU()
		if workers < 1 {
			workers = 1
		}
	}
	pp := &parallelPicker{
		ctx:     ctx,
		eng:     eng,
		sol:     sol,
		workers: workers,
		start:   make([]chan struct{}, workers),
		results: make(chan localBest, workers),
	}
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		pp.start[w] = make(chan struct{})
		lo := int32(w * chunk)
		hi := int32((w + 1) * chunk)
		if hi > int32(n) {
			hi = int32(n)
		}
		pp.wg.Add(1)
		go pp.worker(lo, hi, pp.start[w])
	}
	return pp
}

func (pp *parallelPicker) worker(lo, hi int32, start <-chan struct{}) {
	defer pp.wg.Done()
	for range start {
		best := localBest{v: -1, gain: -1}
		for v := lo; v < hi; v++ {
			if (v-lo)%cancelCheckStride == 0 && ctxErr(pp.ctx) != nil {
				best.canceled = true
				break
			}
			if pp.eng.Retained(v) {
				continue
			}
			g := pp.eng.Gain(v)
			best.evals++
			if g > best.gain {
				if best.gain > best.gain2 {
					best.gain2 = best.gain
				}
				best.v, best.gain = v, g
			} else if g > best.gain2 {
				best.gain2 = g
			}
		}
		pp.results <- best
	}
}

func (pp *parallelPicker) pick() (int32, float64, float64, bool, error) {
	for _, c := range pp.start {
		c <- struct{}{}
	}
	overall := localBest{v: -1, gain: -1}
	canceled := false
	for i := 0; i < pp.workers; i++ {
		lb := <-pp.results
		pp.sol.GainEvals += lb.evals
		canceled = canceled || lb.canceled
		if lb.v < 0 {
			continue
		}
		// Max gain, ties toward the smaller id: workers own disjoint
		// ascending stripes, so receiving order does not matter as long as
		// strictly-greater replaces and equal keeps the smaller id. The
		// global runner-up is the max of the losing stripe's best and the
		// winning stripe's own runner-up.
		if lb.gain > overall.gain || (lb.gain == overall.gain && overall.v >= 0 && lb.v < overall.v) {
			g2 := lb.gain2
			if overall.gain > g2 {
				g2 = overall.gain
			}
			overall = localBest{v: lb.v, gain: lb.gain, gain2: g2}
		} else {
			if lb.gain > overall.gain2 {
				overall.gain2 = lb.gain
			}
		}
	}
	if canceled {
		// At least one stripe was cut short, so the merged argmax is not
		// trustworthy; every worker has still sent its round result, so the
		// pool is quiescent and safe to close.
		return 0, 0, 0, false, pp.ctx.Err()
	}
	if overall.v < 0 {
		return 0, 0, 0, false, nil
	}
	return overall.v, overall.gain, overall.gain2, true, nil
}

func (pp *parallelPicker) close() {
	if pp.closed {
		return
	}
	pp.closed = true
	for _, c := range pp.start {
		close(c)
	}
	pp.wg.Wait()
}
