package greedy_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	. "prefcover/internal/greedy"
)

// tieGraph builds a graph where several nodes have exactly equal gains at
// every step: four isolated nodes with identical weights.
func tieGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4, 0)
	for i := 0; i < 4; i++ {
		b.AddNode(0.25)
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestTieBreakingDeterministic: with exactly equal gains all strategies
// must pick ascending ids.
func TestTieBreakingDeterministic(t *testing.T) {
	g := tieGraph(t)
	want := []int32{0, 1, 2}
	for name, opts := range map[string]Options{
		"scan":     {Variant: graph.Independent, K: 3},
		"parallel": {Variant: graph.Independent, K: 3, Workers: 3},
		"lazy":     {Variant: graph.Independent, K: 3, Lazy: true},
	} {
		sol, err := Solve(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(sol.Order, want) {
			t.Errorf("%s: order = %v, want %v", name, sol.Order, want)
		}
	}
}

// TestSymmetricTies: two symmetric hub pairs with identical structure; the
// smaller-id hub must be selected first by every strategy.
func TestSymmetricTies(t *testing.T) {
	b := graph.NewBuilder(6, 4)
	// Two identical stars: hub 0 with leaves 2,3 and hub 1 with leaves 4,5.
	for i := 0; i < 2; i++ {
		b.AddNode(0.1) // hubs
	}
	for i := 0; i < 4; i++ {
		b.AddNode(0.2) // leaves
	}
	b.AddEdge(2, 0, 0.5)
	b.AddEdge(3, 0, 0.5)
	b.AddEdge(4, 1, 0.5)
	b.AddEdge(5, 1, 0.5)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"scan":     {Variant: graph.Normalized, K: 2},
		"parallel": {Variant: graph.Normalized, K: 2, Workers: 4},
		"lazy":     {Variant: graph.Normalized, K: 2, Lazy: true},
	} {
		sol, err := Solve(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Order[0] != 0 || sol.Order[1] != 1 {
			t.Errorf("%s: order = %v, want [0 1]", name, sol.Order)
		}
	}
}

// TestPinnedItems: must-stock items are retained first, count toward K,
// and the greedy fill optimizes around them under every strategy.
func TestPinnedItems(t *testing.T) {
	g := fixture.Figure1Graph()
	a, _ := g.Lookup("A")
	b, _ := g.Lookup("B")
	for name, opts := range map[string]Options{
		"scan":     {Variant: graph.Independent, K: 2, Pinned: []int32{a}},
		"lazy":     {Variant: graph.Independent, K: 2, Pinned: []int32{a}, Lazy: true},
		"parallel": {Variant: graph.Independent, K: 2, Pinned: []int32{a}, Workers: 3},
	} {
		sol, err := Solve(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sol.Order) != 2 || sol.Order[0] != a {
			t.Fatalf("%s: order = %v, want A first", name, sol.Order)
		}
		// With A pinned the best fill is still B (covers C fully and the
		// rest of A is already retained).
		if sol.Order[1] != b {
			t.Errorf("%s: second pick = %s, want B", name, g.Label(sol.Order[1]))
		}
		// Cover equals a fresh evaluation of {A,B}.
		want, err := cover.EvaluateSet(g, graph.Independent, sol.Order)
		if err != nil || math.Abs(want-sol.Cover) > tol {
			t.Errorf("%s: cover %g vs fresh %g (%v)", name, sol.Cover, want, err)
		}
	}
}

func TestPinnedValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	for name, opts := range map[string]Options{
		"too many":     {Variant: graph.Independent, K: 1, Pinned: []int32{0, 1}},
		"out of range": {Variant: graph.Independent, K: 2, Pinned: []int32{99}},
		"duplicate":    {Variant: graph.Independent, K: 3, Pinned: []int32{1, 1}},
	} {
		if _, err := Solve(g, opts); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestPinnedFillsKExactly(t *testing.T) {
	g := fixture.Figure1Graph()
	sol, err := Solve(g, Options{Variant: graph.Independent, K: 3, Pinned: []int32{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Order) != 3 || sol.Order[0] != 3 || sol.Order[1] != 4 {
		t.Fatalf("order = %v", sol.Order)
	}
}

func TestPinnedThresholdAlreadyMet(t *testing.T) {
	g := fixture.Figure1Graph()
	b, _ := g.Lookup("B")
	d, _ := g.Lookup("D")
	sol, err := Solve(g, Options{Variant: graph.Independent, Threshold: 0.8, Pinned: []int32{b, d}})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reached || len(sol.Order) != 2 {
		t.Fatalf("sol = reached=%v order=%v", sol.Reached, sol.Order)
	}
}

// TestZeroWeightGraph: a graph whose demand is all zero must not crash;
// every gain is zero and k nodes are still returned.
func TestZeroWeightGraph(t *testing.T) {
	b := graph.NewBuilder(3, 1)
	for i := 0; i < 3; i++ {
		b.AddNode(0)
	}
	b.AddEdge(0, 1, 0.5)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(g, Options{Variant: graph.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Order) != 2 || sol.Cover != 0 {
		t.Errorf("sol = %+v", sol)
	}
	// Threshold mode cannot reach anything positive.
	sol, err = Solve(g, Options{Variant: graph.Independent, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reached {
		t.Error("zero-demand graph cannot reach a positive threshold")
	}
}

// TestSingleNodeGraph exercises the smallest possible instance.
func TestSingleNodeGraph(t *testing.T) {
	b := graph.NewBuilder(1, 0)
	b.AddNode(1)
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Variant: graph.Independent, K: 1},
		{Variant: graph.Normalized, K: 1, Lazy: true},
		{Variant: graph.Independent, Threshold: 1},
		{Variant: graph.Independent, K: 1, Workers: 8},
	} {
		sol, err := Solve(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(sol.Order) != 1 || sol.Order[0] != 0 || sol.Cover != 1 {
			t.Errorf("opts %+v: sol = %+v", opts, sol)
		}
	}
}

// TestDenseGraphAllPairs: a complete digraph stresses the in-edge loops.
func TestDenseGraphAllPairs(t *testing.T) {
	const n = 12
	b := graph.NewBuilder(n, n*(n-1))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		b.AddNode(1.0 / n)
	}
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			if i != j {
				b.AddEdge(i, j, 0.01+0.5*rng.Float64())
			}
		}
	}
	g, err := b.Build(graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Solve(g, Options{Variant: graph.Independent, K: n / 2})
	if err != nil {
		t.Fatal(err)
	}
	lzy, err := Solve(g, Options{Variant: graph.Independent, K: n / 2, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Order, lzy.Order) {
		t.Errorf("dense graph: scan %v != lazy %v", seq.Order, lzy.Order)
	}
}
