package greedy_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	. "prefcover/internal/greedy"
)

// TestStrategiesAgreeOnRandomGraphs is the ordered-solution invariant of
// paper Section 4 as a property test: on 50 randomized synthetic graphs
// per variant, the sequential scan, the parallel scan and lazy-CELF must
// produce the identical selection Order (ties broken toward smaller ids
// make the argmax unique per iteration).
func TestStrategiesAgreeOnRandomGraphs(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0x5eed ^ int64(variant)))
			for trial := 0; trial < 50; trial++ {
				n := 16 + rng.Intn(120)
				maxDeg := 1 + rng.Intn(8)
				g := graphtest.Random(rng, n, maxDeg, variant)
				k := 1 + rng.Intn(n)
				base := Options{Variant: variant, K: k}

				scan, err := Solve(g, base)
				if err != nil {
					t.Fatalf("trial %d: scan: %v", trial, err)
				}
				parOpts := base
				parOpts.Workers = 2 + rng.Intn(6)
				par, err := Solve(g, parOpts)
				if err != nil {
					t.Fatalf("trial %d: parallel: %v", trial, err)
				}
				lazyOpts := base
				lazyOpts.Lazy = true
				lazy, err := Solve(g, lazyOpts)
				if err != nil {
					t.Fatalf("trial %d: lazy: %v", trial, err)
				}
				flatOpts := base
				flatOpts.Strategy = StrategyLazyFlat
				flat, err := Solve(g, flatOpts)
				if err != nil {
					t.Fatalf("trial %d: lazyflat: %v", trial, err)
				}
				skOpts := base
				skOpts.Strategy = StrategySketch
				sketch, err := Solve(g, skOpts)
				if err != nil {
					t.Fatalf("trial %d: sketch: %v", trial, err)
				}

				assertSameOrder(t, trial, "parallel", scan.Order, par.Order)
				assertSameOrder(t, trial, "lazy", scan.Order, lazy.Order)
				assertSameOrder(t, trial, "lazyflat", scan.Order, flat.Order)
				assertSameOrder(t, trial, "sketch", scan.Order, sketch.Order)
				if math.Abs(scan.Cover-lazy.Cover) > 1e-9 || math.Abs(scan.Cover-par.Cover) > 1e-9 {
					t.Fatalf("trial %d: covers diverge: scan %g parallel %g lazy %g",
						trial, scan.Cover, par.Cover, lazy.Cover)
				}
				// The kernel strategies promise byte-identical covers, not
				// merely within-tolerance: same expressions, same order.
				if scan.Cover != flat.Cover || scan.Cover != sketch.Cover {
					t.Fatalf("trial %d: kernel covers not bit-identical: scan %v lazyflat %v sketch %v",
						trial, scan.Cover, flat.Cover, sketch.Cover)
				}
				if lazy.GainEvals > scan.GainEvals {
					t.Errorf("trial %d: lazy did more work than scan (%d > %d evals)",
						trial, lazy.GainEvals, scan.GainEvals)
				}
			}
		})
	}
}

func assertSameOrder(t *testing.T, trial int, name string, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trial %d: %s order length %d != scan %d", trial, name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trial %d: %s diverges at step %d: %d != %d", trial, name, i, got[i], want[i])
		}
	}
}

// TestCancellationReturnsPrefix checks the cancellation contract for every
// deterministic strategy: canceling mid-solve yields exactly a prefix of
// the uncancelled deterministic order, finalized (Cover/Coverage set) and
// flagged unreached, together with ctx.Err().
func TestCancellationReturnsPrefix(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		rng := rand.New(rand.NewSource(0xabc ^ int64(variant)))
		for trial := 0; trial < 10; trial++ {
			n := 40 + rng.Intn(80)
			g := graphtest.Random(rng, n, 1+rng.Intn(6), variant)
			k := n/2 + 1
			full, err := Solve(g, Options{Variant: variant, K: k})
			if err != nil {
				t.Fatal(err)
			}
			if len(full.Order) < 4 {
				continue
			}
			stopAfter := 1 + rng.Intn(len(full.Order)-2)
			for _, tc := range []struct {
				name string
				mod  func(*Options)
			}{
				{"scan", func(o *Options) {}},
				{"parallel", func(o *Options) { o.Workers = 4 }},
				{"lazy", func(o *Options) { o.Lazy = true }},
				{"lazyflat", func(o *Options) { o.Strategy = StrategyLazyFlat }},
				{"sketch", func(o *Options) { o.Strategy = StrategySketch }},
			} {
				ctx, cancel := context.WithCancel(context.Background())
				opts := Options{Variant: variant, K: k, Ctx: ctx}
				tc.mod(&opts)
				opts.OnSelect = func(step int, v int32, gain, cover float64) {
					if step == stopAfter {
						cancel()
					}
				}
				partial, err := Solve(g, opts)
				cancel()
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s/%s trial %d: err = %v, want context.Canceled", variant, tc.name, trial, err)
				}
				if partial == nil {
					t.Fatalf("%s/%s trial %d: no partial solution returned", variant, tc.name, trial)
				}
				if partial.Reached {
					t.Errorf("%s/%s trial %d: canceled solution claims Reached", variant, tc.name, trial)
				}
				if len(partial.Order) < stopAfter || len(partial.Order) >= len(full.Order) {
					t.Fatalf("%s/%s trial %d: partial has %d selections, canceled at %d of %d",
						variant, tc.name, trial, len(partial.Order), stopAfter, len(full.Order))
				}
				for i, v := range partial.Order {
					if v != full.Order[i] {
						t.Fatalf("%s/%s trial %d: partial order diverges at %d: %d != %d",
							variant, tc.name, trial, i, v, full.Order[i])
					}
				}
				if len(partial.Coverage) != g.NumNodes() {
					t.Fatalf("%s/%s trial %d: partial solution not finalized (coverage len %d)",
						variant, tc.name, trial, len(partial.Coverage))
				}
				prefix := partial.PrefixCover()
				if math.Abs(prefix[len(prefix)-1]-partial.Cover) > 1e-9 {
					t.Errorf("%s/%s trial %d: partial Cover %g != gain prefix sum %g",
						variant, tc.name, trial, partial.Cover, prefix[len(prefix)-1])
				}
			}
		}
	}
}

// TestExpiredDeadlineReturnsPromptly is the acceptance scenario: a solve
// whose deadline has already passed must come back with a context error
// essentially immediately, for every strategy, while the identical
// uncancelled solve still returns the deterministic ordering.
func TestExpiredDeadlineReturnsPromptly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphtest.Random(rng, 4000, 6, graph.Independent)
	want, err := Solve(g, Options{Variant: graph.Independent, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mod  func(*Options)
	}{
		{"scan", func(o *Options) {}},
		{"parallel", func(o *Options) { o.Workers = 4 }},
		{"lazy", func(o *Options) { o.Lazy = true }},
		{"stochastic", func(o *Options) { o.StochasticEpsilon = 0.1 }},
	} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		<-ctx.Done() // deadline already expired when the solve starts
		opts := Options{Variant: graph.Independent, K: 50, Ctx: ctx}
		tc.mod(&opts)
		start := time.Now()
		sol, err := Solve(g, opts)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want deadline exceeded", tc.name, err)
		}
		if sol == nil || len(sol.Order) != 0 {
			t.Fatalf("%s: expected an empty prefix from an expired deadline", tc.name)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("%s: cancellation took %s", tc.name, elapsed)
		}
	}
	// The uncancelled control run is untouched by all that cancellation.
	again, err := Solve(g, Options{Variant: graph.Independent, K: 50})
	if err != nil {
		t.Fatal(err)
	}
	assertSameOrder(t, 0, "control", want.Order, again.Order)
}

// TestProgressEvents validates the instrumentation stream: steps are
// sequential, selections match the returned Order/Gains, the per-iteration
// work counters reconcile with GainEvals, and pinned selections are
// labeled as such.
func TestProgressEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graphtest.Random(rng, 200, 5, graph.Independent)
	for _, tc := range []struct {
		name     string
		strategy string
		mod      func(*Options)
	}{
		{"scan", StrategyScan, func(o *Options) {}},
		{"parallel", StrategyParallel, func(o *Options) { o.Workers = 3 }},
		{"lazy", StrategyLazy, func(o *Options) { o.Lazy = true }},
	} {
		var events []ProgressEvent
		opts := Options{
			Variant: graph.Independent,
			K:       20,
			Pinned:  []int32{7, 3},
			Progress: func(ev ProgressEvent) {
				events = append(events, ev)
			},
		}
		tc.mod(&opts)
		sol, err := Solve(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(events) != len(sol.Order) {
			t.Fatalf("%s: %d events for %d selections", tc.name, len(events), len(sol.Order))
		}
		var evaluated, reevaluated int64
		for i, ev := range events {
			if ev.Step != i+1 {
				t.Fatalf("%s: event %d has step %d", tc.name, i, ev.Step)
			}
			if ev.Node != sol.Order[i] {
				t.Fatalf("%s: event %d node %d != order %d", tc.name, i, ev.Node, sol.Order[i])
			}
			if ev.Gain != sol.Gains[i] {
				t.Fatalf("%s: event %d gain %g != %g", tc.name, i, ev.Gain, sol.Gains[i])
			}
			wantStrategy := tc.strategy
			if i < 2 {
				wantStrategy = StrategyPinned
			}
			if ev.Strategy != wantStrategy {
				t.Fatalf("%s: event %d strategy %q, want %q", tc.name, i, ev.Strategy, wantStrategy)
			}
			evaluated += ev.Evaluated
			reevaluated += ev.Reevaluated
			if ev.Reevaluated > 0 && tc.strategy != StrategyLazy {
				t.Fatalf("%s: non-lazy event reported heap re-evaluations", tc.name)
			}
		}
		if last := events[len(events)-1]; last.TotalEvals != sol.GainEvals {
			t.Errorf("%s: final TotalEvals %d != GainEvals %d", tc.name, last.TotalEvals, sol.GainEvals)
		}
		if last := events[len(events)-1]; math.Abs(last.Cover-sol.Cover) > 1e-9 {
			t.Errorf("%s: final event cover %g != solution cover %g", tc.name, last.Cover, sol.Cover)
		}
		switch tc.strategy {
		case StrategyLazy:
			// Initial heap build evaluates every non-pinned candidate once;
			// everything after that is a counted re-evaluation.
			build := int64(g.NumNodes() - 2)
			if evaluated+build != sol.GainEvals {
				t.Errorf("lazy: per-event evals %d + build %d != total %d", evaluated, build, sol.GainEvals)
			}
			if evaluated != reevaluated {
				t.Errorf("lazy: evaluated %d != reevaluated %d", evaluated, reevaluated)
			}
		default:
			if evaluated != sol.GainEvals {
				t.Errorf("%s: per-event evals %d != total %d", tc.name, evaluated, sol.GainEvals)
			}
		}
	}
}

// TestOnSelectAndProgressBothFire keeps the legacy hook working alongside
// the new one.
func TestOnSelectAndProgressBothFire(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphtest.Random(rng, 50, 4, graph.Independent)
	var selects, progresses int
	_, err := Solve(g, Options{
		Variant:  graph.Independent,
		K:        5,
		OnSelect: func(step int, v int32, gain, cover float64) { selects++ },
		Progress: func(ProgressEvent) { progresses++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if selects != 5 || progresses != 5 {
		t.Fatalf("hooks fired %d/%d times, want 5/5", selects, progresses)
	}
}
