package greedy_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prefcover/internal/baseline"
	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	. "prefcover/internal/greedy"
)

const tol = 1e-9

func bothVariants(t *testing.T, f func(t *testing.T, variant graph.Variant)) {
	t.Run("independent", func(t *testing.T) { f(t, graph.Independent) })
	t.Run("normalized", func(t *testing.T) { f(t, graph.Normalized) })
}

// TestExample32 runs Algorithm 1 on the Figure 1 graph with k=2 and checks
// the full trace from paper Example 3.2: pick B (gain 66%), then D (gain
// 21.3%), total 87.3%.
func TestExample32(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		sol, err := Solve(g, Options{Variant: variant, K: fixture.Fig1K})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := g.Lookup("B")
		d, _ := g.Lookup("D")
		if len(sol.Order) != 2 || sol.Order[0] != b || sol.Order[1] != d {
			labels := make([]string, len(sol.Order))
			for i, v := range sol.Order {
				labels[i] = g.Label(v)
			}
			t.Fatalf("order = %v, want [B D]", labels)
		}
		if math.Abs(sol.Gains[0]-fixture.Fig1GainB) > tol {
			t.Errorf("gain B = %g", sol.Gains[0])
		}
		if math.Abs(sol.Gains[1]-fixture.Fig1GainD) > tol {
			t.Errorf("gain D = %g", sol.Gains[1])
		}
		if math.Abs(sol.Cover-fixture.Fig1CoverBD) > tol {
			t.Errorf("cover = %g, want %g", sol.Cover, fixture.Fig1CoverBD)
		}
		a, _ := g.Lookup("A")
		e, _ := g.Lookup("E")
		if math.Abs(sol.Coverage[a]-fixture.Fig1CoverageA) > tol {
			t.Errorf("coverage A = %g", sol.Coverage[a])
		}
		if math.Abs(sol.Coverage[e]-fixture.Fig1CoverageE) > tol {
			t.Errorf("coverage E = %g", sol.Coverage[e])
		}
	})
}

func TestOptionsValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	for name, opts := range map[string]Options{
		"no budget or threshold": {Variant: graph.Independent},
		"negative k":             {Variant: graph.Independent, K: -2},
		"threshold too big":      {Variant: graph.Independent, Threshold: 1.5},
		"negative threshold":     {Variant: graph.Independent, Threshold: -0.5, K: 1},
	} {
		if _, err := Solve(g, opts); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestKLargerThanNSelectsAll(t *testing.T) {
	g := fixture.Figure1Graph()
	sol, err := Solve(g, Options{Variant: graph.Independent, K: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Order) != g.NumNodes() {
		t.Fatalf("selected %d of %d", len(sol.Order), g.NumNodes())
	}
	if math.Abs(sol.Cover-1) > tol {
		t.Errorf("cover = %g, want 1", sol.Cover)
	}
}

// TestStrategiesAgree is the central determinism property: sequential scan,
// parallel scan, and lazy evaluation must produce the identical ordered
// solution.
func TestStrategiesAgree(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(40), 5, variant)
			k := 1 + rng.Intn(g.NumNodes())
			seq, err1 := Solve(g, Options{Variant: variant, K: k})
			par, err2 := Solve(g, Options{Variant: variant, K: k, Workers: 4})
			lzy, err3 := Solve(g, Options{Variant: variant, K: k, Lazy: true})
			if err1 != nil || err2 != nil || err3 != nil {
				return false
			}
			return reflect.DeepEqual(seq.Order, par.Order) &&
				reflect.DeepEqual(seq.Order, lzy.Order) &&
				math.Abs(seq.Cover-par.Cover) < tol &&
				math.Abs(seq.Cover-lzy.Cover) < tol
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	})
}

// TestLazyEvaluatesFewerGains confirms the CELF ablation premise.
func TestLazyEvaluatesFewerGains(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphtest.Random(rng, 400, 6, graph.Independent)
	k := 100
	seq, err := Solve(g, Options{Variant: graph.Independent, K: k})
	if err != nil {
		t.Fatal(err)
	}
	lzy, err := Solve(g, Options{Variant: graph.Independent, K: k, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if lzy.GainEvals >= seq.GainEvals {
		t.Errorf("lazy evals %d >= scan evals %d", lzy.GainEvals, seq.GainEvals)
	}
}

// TestPrefixProperty: the k'-prefix of the greedy order is the greedy
// solution for budget k' (paper Section 3.2, Additional Advantages).
func TestPrefixProperty(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(30), 4, variant)
			k := 2 + rng.Intn(g.NumNodes()-1)
			full, err := Solve(g, Options{Variant: variant, K: k})
			if err != nil {
				return false
			}
			kPrime := 1 + rng.Intn(len(full.Order))
			part, err := Solve(g, Options{Variant: variant, K: kPrime})
			if err != nil {
				return false
			}
			return reflect.DeepEqual(part.Order, full.Order[:len(part.Order)])
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	})
}

// TestApproximationRatio: greedy must achieve at least (1 - 1/e) of the
// brute-force optimum on small random instances (both variants — the
// Normalized guarantee is even stronger for large k/n).
func TestApproximationRatio(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		ratio := 1 - 1/math.E
		for seed := int64(0); seed < 15; seed++ {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 6+rng.Intn(5), 3, variant)
			k := 1 + rng.Intn(4)
			sol, err := Solve(g, Options{Variant: variant, K: k})
			if err != nil {
				t.Fatal(err)
			}
			opt, _, err := baseline.BruteForce(g, variant, k, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Cover < ratio*opt.Cover-tol {
				t.Errorf("seed %d: greedy %g < %g * optimum %g", seed, sol.Cover, ratio, opt.Cover)
			}
			if sol.Cover > opt.Cover+tol {
				t.Errorf("seed %d: greedy %g exceeds optimum %g", seed, sol.Cover, opt.Cover)
			}
		}
	})
}

func TestGainsAreNonincreasing(t *testing.T) {
	// Submodularity implies greedy marginal gains never increase.
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(30), 4, variant)
			sol, err := Solve(g, Options{Variant: variant, K: g.NumNodes()})
			if err != nil {
				return false
			}
			for i := 1; i < len(sol.Gains); i++ {
				if sol.Gains[i] > sol.Gains[i-1]+tol {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	})
}

func TestThresholdMode(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		g := fixture.Figure1Graph()
		sol, err := Solve(g, Options{Variant: variant, Threshold: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Reached {
			t.Fatal("threshold not reached")
		}
		if sol.Cover < 0.8-tol {
			t.Errorf("cover %g below threshold", sol.Cover)
		}
		// Minimality within the greedy order: the previous prefix was
		// below the threshold.
		if len(sol.Order) > 1 {
			prefix := sol.PrefixCover()
			if prefix[len(sol.Order)-1] >= 0.8 {
				t.Error("smaller prefix already met threshold")
			}
		}
		// 0.8 needs {B,D} (0.66 alone is not enough): expect size 2.
		if len(sol.Order) != 2 {
			t.Errorf("size = %d, want 2", len(sol.Order))
		}
	})
}

func TestThresholdUnreachable(t *testing.T) {
	// A graph whose total weight reachable is 1 always reaches any
	// threshold <= 1 when k is unlimited; cap k to make 0.99 unreachable.
	g := fixture.Figure1Graph()
	sol, err := Solve(g, Options{Variant: graph.Independent, Threshold: 0.99, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reached {
		t.Error("threshold should not be reachable with k=1")
	}
	if len(sol.Order) != 1 {
		t.Errorf("order len = %d", len(sol.Order))
	}
}

func TestThresholdWithKCap(t *testing.T) {
	g := fixture.Figure1Graph()
	sol, err := Solve(g, Options{Variant: graph.Independent, Threshold: 0.5, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reached {
		t.Error("0.5 should be reached")
	}
	if len(sol.Order) != 1 { // B alone covers 0.66
		t.Errorf("order len = %d, want 1", len(sol.Order))
	}
}

func TestOnSelectCallback(t *testing.T) {
	g := fixture.Figure1Graph()
	var steps []int
	var covers []float64
	sol, err := Solve(g, Options{
		Variant: graph.Independent,
		K:       3,
		OnSelect: func(step int, v int32, gain, cover float64) {
			steps = append(steps, step)
			covers = append(covers, cover)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 || steps[0] != 1 || steps[2] != 3 {
		t.Errorf("steps = %v", steps)
	}
	if math.Abs(covers[len(covers)-1]-sol.Cover) > tol {
		t.Errorf("last callback cover %g != solution cover %g", covers[len(covers)-1], sol.Cover)
	}
}

func TestContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graphtest.Random(rng, 200, 4, graph.Independent)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(g, Options{Variant: graph.Independent, K: 100, Ctx: ctx}); err == nil {
		t.Fatal("want context error")
	}
}

func TestSolutionHelpers(t *testing.T) {
	g := fixture.Figure1Graph()
	sol, err := Solve(g, Options{Variant: graph.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	set := sol.Set(g.NumNodes())
	count := 0
	for _, in := range set {
		if in {
			count++
		}
	}
	if count != 2 {
		t.Errorf("Set count = %d", count)
	}
	prefix := sol.PrefixCover()
	if len(prefix) != 3 || prefix[0] != 0 {
		t.Fatalf("prefix = %v", prefix)
	}
	if math.Abs(prefix[2]-sol.Cover) > tol {
		t.Errorf("prefix end %g != cover %g", prefix[2], sol.Cover)
	}
}

// TestSolveCoverMatchesEvaluate cross-checks the incremental cover against
// the from-scratch formula on the solver's own output.
func TestSolveCoverMatchesEvaluate(t *testing.T) {
	bothVariants(t, func(t *testing.T, variant graph.Variant) {
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(30), 4, variant)
			k := 1 + rng.Intn(g.NumNodes())
			sol, err := Solve(g, Options{Variant: variant, K: k, Lazy: seed%2 == 0})
			if err != nil {
				return false
			}
			fresh, err := cover.EvaluateSet(g, variant, sol.Order)
			if err != nil {
				return false
			}
			return math.Abs(fresh-sol.Cover) < 1e-9
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	})
}

func TestWorkersMoreThanNodes(t *testing.T) {
	g := fixture.Figure1Graph()
	sol, err := Solve(g, Options{Variant: graph.Independent, K: 2, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Order) != 2 {
		t.Errorf("order len = %d", len(sol.Order))
	}
	seq, _ := Solve(g, Options{Variant: graph.Independent, K: 2})
	if !reflect.DeepEqual(seq.Order, sol.Order) {
		t.Error("oversubscribed workers changed the selection")
	}
}
