package greedy

import (
	"math"
	"math/rand"

	"prefcover/internal/cover"
)

// stochasticPicker implements stochastic greedy (Mirzasoleiman et al.,
// "Lazier Than Lazy Greedy", AAAI 2015): each iteration evaluates the gain
// of only s = ceil((n/k) * ln(1/epsilon)) uniformly sampled non-retained
// candidates and takes the best. For monotone submodular objectives this
// achieves (1 - 1/e - epsilon) approximation in expectation with O(n
// log(1/epsilon)) total gain evaluations — independent of k — making it
// the cheapest strategy for very large budgets.
//
// Unlike the scan and lazy strategies it is randomized: results are
// reproducible only through Options.Seed and generally differ from the
// deterministic strategies' selection.
type stochasticPicker struct {
	eng        *cover.Engine
	sol        *Solution
	rng        *rand.Rand
	sampleSize int
	// pool holds the not-yet-retained candidates; retained entries are
	// swept lazily when sampled.
	pool []int32
}

func newStochasticPicker(eng *cover.Engine, sol *Solution, k int, epsilon float64, seed int64) *stochasticPicker {
	n := eng.Graph().NumNodes()
	if k <= 0 || k > n {
		k = n
	}
	s := int(math.Ceil(float64(n) / float64(k) * math.Log(1/epsilon)))
	if s < 1 {
		s = 1
	}
	if s > n {
		s = n
	}
	pool := make([]int32, n)
	for i := range pool {
		pool[i] = int32(i)
	}
	return &stochasticPicker{
		eng:        eng,
		sol:        sol,
		rng:        rand.New(rand.NewSource(seed)),
		sampleSize: s,
		pool:       pool,
	}
}

func (sp *stochasticPicker) pick() (int32, float64, float64, bool, error) {
	// Partial Fisher-Yates over the candidate pool; retained nodes found
	// along the way are compacted out so the pool shrinks to V \ S.
	best := int32(-1)
	bestGain := -1.0
	sampled := 0
	for i := 0; i < len(sp.pool) && sampled < sp.sampleSize; {
		j := i + sp.rng.Intn(len(sp.pool)-i)
		sp.pool[i], sp.pool[j] = sp.pool[j], sp.pool[i]
		v := sp.pool[i]
		if sp.eng.Retained(v) {
			// Compact: replace with the last pool entry and retry the
			// same position.
			sp.pool[i] = sp.pool[len(sp.pool)-1]
			sp.pool = sp.pool[:len(sp.pool)-1]
			continue
		}
		g := sp.eng.Gain(v)
		sp.sol.GainEvals++
		sampled++
		if g > bestGain || (g == bestGain && v < best) {
			best, bestGain = v, g
		}
		i++
	}
	if best < 0 {
		return 0, 0, 0, false, nil
	}
	// The sample says nothing about unsampled candidates' gains, so no
	// sound remaining-gain bound exists for the stochastic strategy.
	return best, bestGain, BoundUnavailable, true, nil
}
