package greedy

import (
	"container/heap"
	"context"

	"prefcover/internal/cover"
)

// lazyPicker implements CELF lazy evaluation (Leskovec et al. 2007),
// applicable because C is monotone submodular in both variants: once a
// node's marginal gain is computed it can only shrink as S grows, so the
// last computed value is a valid upper bound. The picker keeps all
// candidates in a max-heap keyed by that bound; a popped candidate whose
// bound is fresh (computed at the current |S|) is the true argmax and is
// returned, otherwise it is re-evaluated and pushed back.
//
// Selection matches the scan strategies exactly: the heap orders by
// (gain desc, id asc), every candidate tying the maximum true gain is
// re-evaluated before acceptance, and among fresh candidates with equal
// gain the smallest id surfaces first.
type lazyPicker struct {
	ctx context.Context
	eng *cover.Engine
	sol *Solution
	h   lazyHeap
	// reevals counts stale-bound recomputations, the quantity the lazy
	// strategy exists to minimize; Solve diffs it per iteration for the
	// Progress hook.
	reevals int64
	// buildErr is set when the context fired during the initial O(n) heap
	// build; the first pick then surfaces it instead of a selection.
	buildErr error
}

type lazyEntry struct {
	v     int32
	gain  float64 // upper bound on the current marginal gain
	round int     // |S| at which gain was computed
}

func newLazyPicker(ctx context.Context, eng *cover.Engine, sol *Solution) *lazyPicker {
	n := eng.Graph().NumNodes()
	lp := &lazyPicker{ctx: ctx, eng: eng, sol: sol}
	lp.h = make(lazyHeap, 0, n)
	round := eng.Size() // nonzero when items were pinned before the fill
	for v := int32(0); v < int32(n); v++ {
		if v%cancelCheckStride == 0 {
			if err := ctxErr(ctx); err != nil {
				lp.buildErr = err
				return lp
			}
		}
		if eng.Retained(v) {
			continue
		}
		lp.h = append(lp.h, lazyEntry{v: v, gain: eng.Gain(v), round: round})
		sol.GainEvals++
	}
	heap.Init(&lp.h)
	return lp
}

func (lp *lazyPicker) pick() (int32, float64, float64, bool, error) {
	if lp.buildErr != nil {
		return 0, 0, 0, false, lp.buildErr
	}
	round := lp.eng.Size()
	for steps := 0; lp.h.Len() > 0; steps++ {
		if steps%cancelCheckStride == 0 {
			if err := ctxErr(lp.ctx); err != nil {
				// Abandon the pick: recomputed bounds already sifted into the
				// heap stay valid (gain recomputation is idempotent), so a
				// hypothetical resume would still select deterministically.
				return 0, 0, 0, false, err
			}
		}
		top := lp.h[0]
		if top.round == round {
			// Pop by hand: heap.Pop returns the element through an
			// interface{}, boxing one lazyEntry per selection (~one alloc per
			// pick). Swapping the root with the last element, truncating, and
			// re-sifting the new root is the same O(log n) and allocation-free.
			last := len(lp.h) - 1
			lp.h.Swap(0, last)
			lp.h = lp.h[:last]
			if last > 0 {
				heap.Fix(&lp.h, 0)
			}
			// The new heap top's (possibly stale) gain is a valid upper
			// bound on every remaining candidate — stale entries only
			// overestimate, never underestimate, under submodularity. This
			// is the CELF bound the approximation certificate is built on.
			bound := 0.0
			if lp.h.Len() > 0 {
				bound = lp.h[0].gain
			}
			return top.v, top.gain, bound, true, nil
		}
		// Stale: recompute in place and sift.
		lp.h[0].gain = lp.eng.Gain(top.v)
		lp.h[0].round = round
		lp.sol.GainEvals++
		lp.reevals++
		heap.Fix(&lp.h, 0)
	}
	return 0, 0, 0, false, nil
}

// lazyHeap is a max-heap on (gain, then smaller id).
type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h lazyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push and Pop exist only to satisfy heap.Interface for Init/Fix; the hot
// path never calls them — Pop's interface{} return would box a lazyEntry
// (one heap allocation) per selection.
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
