package greedy

import (
	"container/heap"

	"prefcover/internal/cover"
)

// lazyPicker implements CELF lazy evaluation (Leskovec et al. 2007),
// applicable because C is monotone submodular in both variants: once a
// node's marginal gain is computed it can only shrink as S grows, so the
// last computed value is a valid upper bound. The picker keeps all
// candidates in a max-heap keyed by that bound; a popped candidate whose
// bound is fresh (computed at the current |S|) is the true argmax and is
// returned, otherwise it is re-evaluated and pushed back.
//
// Selection matches the scan strategies exactly: the heap orders by
// (gain desc, id asc), every candidate tying the maximum true gain is
// re-evaluated before acceptance, and among fresh candidates with equal
// gain the smallest id surfaces first.
type lazyPicker struct {
	eng *cover.Engine
	sol *Solution
	h   lazyHeap
}

type lazyEntry struct {
	v     int32
	gain  float64 // upper bound on the current marginal gain
	round int     // |S| at which gain was computed
}

func newLazyPicker(eng *cover.Engine, sol *Solution) *lazyPicker {
	n := eng.Graph().NumNodes()
	lp := &lazyPicker{eng: eng, sol: sol}
	lp.h = make(lazyHeap, 0, n)
	round := eng.Size() // nonzero when items were pinned before the fill
	for v := int32(0); v < int32(n); v++ {
		if eng.Retained(v) {
			continue
		}
		lp.h = append(lp.h, lazyEntry{v: v, gain: eng.Gain(v), round: round})
		sol.GainEvals++
	}
	heap.Init(&lp.h)
	return lp
}

func (lp *lazyPicker) pick() (int32, float64, bool) {
	round := lp.eng.Size()
	for lp.h.Len() > 0 {
		top := lp.h[0]
		if top.round == round {
			heap.Pop(&lp.h)
			return top.v, top.gain, true
		}
		// Stale: recompute in place and sift.
		lp.h[0].gain = lp.eng.Gain(top.v)
		lp.h[0].round = round
		lp.sol.GainEvals++
		heap.Fix(&lp.h, 0)
	}
	return 0, 0, false
}

// lazyHeap is a max-heap on (gain, then smaller id).
type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].v < h[j].v
}
func (h lazyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
