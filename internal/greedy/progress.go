package greedy

import (
	"fmt"
	"time"
)

// Strategy names reported in ProgressEvent and used as metric labels by
// the serving layer.
const (
	StrategyScan       = "scan"
	StrategyParallel   = "parallel"
	StrategyLazy       = "lazy"
	StrategyStochastic = "stochastic"
	// StrategyLazyFlat is CELF on the data-oriented kernel: flat coverage
	// state, a pooled allocation-free heap, chunk-parallel heap builds, and
	// memoized base gains (internal/kernel). Selections are byte-identical
	// to every deterministic strategy.
	StrategyLazyFlat = "lazyflat"
	// StrategySketch is StrategyLazyFlat plus succinct coverage sketches:
	// stale heap entries refresh with an O(sketch) certified upper bound and
	// pay the exact O(degree) gain only when the bound cannot separate the
	// top candidates. Selections remain byte-identical.
	StrategySketch = "sketch"
	// StrategyPinned marks selections forced by Options.Pinned; they are
	// reported before the greedy fill begins.
	StrategyPinned = "pinned"
)

// ParseStrategy validates an explicit Options.Strategy value. The empty
// string (derive the strategy from the Lazy/Workers knobs) is allowed;
// StrategyStochastic is not an explicit choice — it is selected by setting
// StochasticEpsilon.
func ParseStrategy(s string) (string, error) {
	switch s {
	case "", StrategyScan, StrategyParallel, StrategyLazy, StrategyLazyFlat, StrategySketch:
		return s, nil
	}
	return "", fmt.Errorf("greedy: unknown strategy %q (want scan, parallel, lazy, lazyflat or sketch)", s)
}

// ProgressEvent describes one completed solver iteration. It is the
// observability counterpart of the paper's Performance Analysis section:
// Evaluated exposes the per-iteration work of the scan strategies (O(n)
// per pick) and Reevaluated the lazy-CELF heap behavior (how many stale
// upper bounds had to be recomputed before the true argmax surfaced —
// usually far fewer than n).
type ProgressEvent struct {
	// Step is the 1-based selection index; Node, Gain and Cover mirror the
	// OnSelect callback (Cover is C(S) after adding Node).
	Step  int
	Node  int32
	Gain  float64
	Cover float64
	// Strategy is the Strategy* constant that produced this selection.
	Strategy string
	// Evaluated counts marginal-gain evaluations performed during this
	// iteration's pick (the lazy strategy's initial O(n) heap build is
	// accounted in TotalEvals, not in any single iteration).
	Evaluated int64
	// Reevaluated counts lazy-heap stale-bound recomputations during this
	// iteration; zero for the other strategies.
	Reevaluated int64
	// TotalEvals is Solution.GainEvals so far, cumulative over the run.
	TotalEvals int64
	// EvalTime and CommitTime split the iteration's wall time into the
	// gain-evaluation stage (the pick: argmax search, heap pops, sampling)
	// and the node-commit stage (Engine.Add updating coverage state). Both
	// are measured only when Options.Progress is set — the hot path takes
	// no clock readings otherwise — and are zero for pinned selections,
	// which skip the pick entirely.
	EvalTime   time.Duration
	CommitTime time.Duration
	// MaxRemainingGain is an upper bound on the marginal gain of any
	// candidate still outside S after this selection, free as a byproduct
	// of the pick: the runner-up gain for the scan strategies, the heap
	// top's (stale-is-still-an-upper-bound) gain for lazy CELF. It is
	// BoundUnavailable (-1) for pinned selections and the stochastic
	// strategy. Because C is monotone submodular, after iteration i any
	// size-k solution satisfies
	//
	//	f(OPT_k) <= C(S_i) + k * MaxRemainingGain_i
	//
	// so min over iterations of that expression (capped at 1) is a
	// per-solve certificate of how far the greedy answer can possibly be
	// from optimal — the approximation gap the serving layer reports.
	MaxRemainingGain float64
}

// BoundUnavailable is the MaxRemainingGain sentinel for selections that
// cannot produce a sound remaining-gain bound.
const BoundUnavailable = -1.0

// strategy names the execution strategy the options select. An explicit
// Strategy wins; otherwise the legacy Lazy/Workers knobs decide.
func (o *Options) strategy() string {
	switch {
	case o.Strategy != "":
		return o.Strategy
	case o.StochasticEpsilon > 0:
		return StrategyStochastic
	case o.Lazy:
		return StrategyLazy
	case o.Workers > 1:
		return StrategyParallel
	default:
		return StrategyScan
	}
}

// StrategyName exposes the resolved strategy for observability labels
// (metrics, pprof labels, cache keys) without re-implementing the
// selection rules in the serving layer.
func (o *Options) StrategyName() string { return o.strategy() }
