package greedy

import (
	"math/rand"
	"testing"

	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
)

// collectBounds solves g and returns the per-iteration events.
func collectBounds(t *testing.T, g *graph.Graph, opts Options) []ProgressEvent {
	t.Helper()
	var events []ProgressEvent
	opts.Progress = func(ev ProgressEvent) { events = append(events, ev) }
	if _, err := Solve(g, opts); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestMaxRemainingGainBoundsNextGain verifies the defining property of
// the certificate for every deterministic strategy: the bound reported at
// iteration i is >= the gain actually realized at iteration i+1 (the next
// pick is itself a "remaining candidate" when the bound was issued).
func TestMaxRemainingGainBoundsNextGain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphtest.Random(rng, 300, 5, graph.Independent)
	const k = 25
	for name, opts := range map[string]Options{
		"scan":     {Variant: graph.Independent, K: k},
		"parallel": {Variant: graph.Independent, K: k, Workers: 4},
		"lazy":     {Variant: graph.Independent, K: k, Lazy: true},
	} {
		t.Run(name, func(t *testing.T) {
			events := collectBounds(t, g, opts)
			if len(events) != k {
				t.Fatalf("got %d events, want %d", len(events), k)
			}
			const eps = 1e-12
			for i, ev := range events {
				if ev.MaxRemainingGain < 0 {
					t.Fatalf("step %d: bound unavailable for %s", ev.Step, name)
				}
				if i+1 < len(events) {
					next := events[i+1].Gain
					if ev.MaxRemainingGain+eps < next {
						t.Errorf("step %d: bound %g < next gain %g", ev.Step, ev.MaxRemainingGain, next)
					}
				}
			}
		})
	}
}

// TestMaxRemainingGainAgreesAcrossDeterministicStrategies: the scan bound
// (exact runner-up) and the parallel bound must be identical; lazy's may
// be looser (stale) but never tighter than the true runner-up.
func TestMaxRemainingGainAgreesAcrossDeterministicStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graphtest.Random(rng, 200, 4, graph.Normalized)
	const k = 15
	scan := collectBounds(t, g, Options{Variant: graph.Normalized, K: k})
	par := collectBounds(t, g, Options{Variant: graph.Normalized, K: k, Workers: 3})
	lazy := collectBounds(t, g, Options{Variant: graph.Normalized, K: k, Lazy: true})
	const eps = 1e-12
	for i := range scan {
		if d := scan[i].MaxRemainingGain - par[i].MaxRemainingGain; d > eps || d < -eps {
			t.Errorf("step %d: scan bound %g != parallel bound %g",
				scan[i].Step, scan[i].MaxRemainingGain, par[i].MaxRemainingGain)
		}
		if lazy[i].MaxRemainingGain+eps < scan[i].MaxRemainingGain {
			t.Errorf("step %d: lazy bound %g tighter than true runner-up %g",
				lazy[i].Step, lazy[i].MaxRemainingGain, scan[i].MaxRemainingGain)
		}
	}
}

// TestBoundSentinels: pinned selections and stochastic picks report
// BoundUnavailable, never a fabricated bound.
func TestBoundSentinels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graphtest.Random(rng, 100, 4, graph.Independent)

	events := collectBounds(t, g, Options{
		Variant: graph.Independent, K: 6, Lazy: true, Pinned: []int32{5, 17},
	})
	for _, ev := range events {
		if ev.Strategy == StrategyPinned && ev.MaxRemainingGain != BoundUnavailable {
			t.Errorf("pinned step %d: bound %g, want BoundUnavailable", ev.Step, ev.MaxRemainingGain)
		}
		if ev.Strategy == StrategyLazy && ev.MaxRemainingGain < 0 {
			t.Errorf("lazy step %d: bound unavailable", ev.Step)
		}
	}

	for _, ev := range collectBounds(t, g, Options{
		Variant: graph.Independent, K: 6, StochasticEpsilon: 0.2, Seed: 1,
	}) {
		if ev.MaxRemainingGain != BoundUnavailable {
			t.Errorf("stochastic step %d: bound %g, want BoundUnavailable", ev.Step, ev.MaxRemainingGain)
		}
	}
}

// TestBoundZeroWhenExhausted: selecting every node leaves no candidates,
// and the final bound must be exactly 0 — the certificate then proves the
// solution is optimal (nothing left has positive gain).
func TestBoundZeroWhenExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graphtest.Random(rng, 30, 3, graph.Independent)
	for name, opts := range map[string]Options{
		"scan": {Variant: graph.Independent, K: 30},
		"lazy": {Variant: graph.Independent, K: 30, Lazy: true},
	} {
		events := collectBounds(t, g, opts)
		last := events[len(events)-1]
		if last.MaxRemainingGain != 0 {
			t.Errorf("%s: final bound %g, want 0 with all nodes retained", name, last.MaxRemainingGain)
		}
	}
}
