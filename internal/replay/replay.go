// Package replay validates cover predictions empirically: it simulates
// consumer requests against a retained inventory under the exact
// probabilistic semantics of each variant and compares the realized
// purchase rate with the analytic C(S). This is the counterpart of the
// paper's claim that "both variants capture real-world consumer behavior"
// — here the ground truth is the preference model itself, so the simulated
// rate must converge to C(S), and the experiment quantifies how fast.
//
// Replay is also the tool a platform would use to A/B-estimate a proposed
// reduction offline: feed the adapted graph and candidate set, read the
// predicted purchase retention with a confidence interval.
package replay

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"prefcover/internal/graph"
	"prefcover/internal/synth"
)

// Spec configures Run.
type Spec struct {
	// Variant selects the alternative-acceptance semantics.
	Variant graph.Variant
	// Requests is the number of simulated consumer requests.
	Requests int
	// Seed drives the simulation.
	Seed int64
}

// Estimate is the simulation outcome.
type Estimate struct {
	// Requests actually simulated.
	Requests int
	// Purchases counts matched requests.
	Purchases int
	// Rate is Purchases/Requests, the empirical cover.
	Rate float64
	// StdErr is the binomial standard error of Rate.
	StdErr float64
	// Predicted is the analytic C(S) for comparison.
	Predicted float64
}

// Within reports whether the prediction lies inside the estimate's
// z-sigma confidence band.
func (e Estimate) Within(z float64) bool {
	return math.Abs(e.Rate-e.Predicted) <= z*e.StdErr+1e-12
}

// String renders the estimate.
func (e Estimate) String() string {
	return fmt.Sprintf("simulated %.4f ± %.4f (n=%d) vs predicted %.4f",
		e.Rate, e.StdErr, e.Requests, e.Predicted)
}

// Run simulates requests against the retained set. The graph's node
// weights are the request distribution; they must not be all zero.
func Run(g *graph.Graph, retained []bool, spec Spec, predicted float64) (Estimate, error) {
	if spec.Requests <= 0 {
		return Estimate{}, errors.New("replay: Requests must be positive")
	}
	if len(retained) != g.NumNodes() {
		return Estimate{}, fmt.Errorf("replay: retained mask has %d entries for %d items", len(retained), g.NumNodes())
	}
	sampler, err := synth.NewAlias(g.NodeWeights())
	if err != nil {
		return Estimate{}, fmt.Errorf("replay: building request sampler: %w", err)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	purchases := 0
	for i := 0; i < spec.Requests; i++ {
		v := sampler.Sample(rng)
		if retained[v] {
			purchases++
			continue
		}
		if matched(g, spec.Variant, retained, v, rng) {
			purchases++
		}
	}
	rate := float64(purchases) / float64(spec.Requests)
	return Estimate{
		Requests:  spec.Requests,
		Purchases: purchases,
		Rate:      rate,
		StdErr:    math.Sqrt(rate * (1 - rate) / float64(spec.Requests)),
		Predicted: predicted,
	}, nil
}

// matched simulates one out-of-stock request for v.
func matched(g *graph.Graph, variant graph.Variant, retained []bool, v int32, rng *rand.Rand) bool {
	dsts, ws := g.OutEdges(v)
	switch variant {
	case graph.Normalized:
		// The consumer settles on at most one alternative, drawn from the
		// edge distribution (the residual probability means "no
		// alternative acceptable"); the sale happens iff that alternative
		// is retained.
		x := rng.Float64()
		for i, u := range dsts {
			if x < ws[i] {
				return retained[u]
			}
			x -= ws[i]
		}
		return false
	default: // graph.Independent
		// Every retained alternative is acceptable independently.
		for i, u := range dsts {
			if retained[u] && rng.Float64() < ws[i] {
				return true
			}
		}
		return false
	}
}

// RunSet is Run for a set given as node ids.
func RunSet(g *graph.Graph, set []int32, spec Spec, predicted float64) (Estimate, error) {
	retained := make([]bool, g.NumNodes())
	for _, v := range set {
		if v < 0 || int(v) >= g.NumNodes() {
			return Estimate{}, fmt.Errorf("replay: set references unknown node %d", v)
		}
		retained[v] = true
	}
	return Run(g, retained, spec, predicted)
}
