package replay_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"prefcover/internal/cover"
	"prefcover/internal/fixture"
	"prefcover/internal/graph"
	"prefcover/internal/graphtest"
	. "prefcover/internal/replay"
)

func TestValidation(t *testing.T) {
	g := fixture.Figure1Graph()
	retained := make([]bool, g.NumNodes())
	if _, err := Run(g, retained, Spec{Requests: 0}, 0); err == nil {
		t.Error("zero requests should fail")
	}
	if _, err := Run(g, []bool{true}, Spec{Requests: 10}, 0); err == nil {
		t.Error("short mask should fail")
	}
	if _, err := RunSet(g, []int32{99}, Spec{Requests: 10}, 0); err == nil {
		t.Error("bad set should fail")
	}
}

func TestFullSetAlwaysPurchases(t *testing.T) {
	g := fixture.Figure1Graph()
	set := []int32{0, 1, 2, 3, 4}
	est, err := RunSet(g, set, Spec{Variant: graph.Independent, Requests: 2000, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate != 1 {
		t.Errorf("full inventory rate = %g", est.Rate)
	}
	if !est.Within(3) {
		t.Errorf("estimate off: %s", est)
	}
}

func TestEmptySetNeverPurchases(t *testing.T) {
	g := fixture.Figure1Graph()
	est, err := Run(g, make([]bool, g.NumNodes()), Spec{Variant: graph.Normalized, Requests: 500, Seed: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if est.Rate != 0 || est.Purchases != 0 {
		t.Errorf("empty inventory rate = %g", est.Rate)
	}
}

// TestSimulationConvergesToPrediction is the headline property: the
// empirical purchase rate converges to the analytic C(S) under both
// variants.
func TestSimulationConvergesToPrediction(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			g := fixture.Figure1Graph()
			b, _ := g.Lookup("B")
			d, _ := g.Lookup("D")
			set := []int32{b, d}
			predicted, err := cover.EvaluateSet(g, variant, set)
			if err != nil {
				t.Fatal(err)
			}
			est, err := RunSet(g, set, Spec{Variant: variant, Requests: 200_000, Seed: 3}, predicted)
			if err != nil {
				t.Fatal(err)
			}
			// 4 sigma at n=200k on a ~0.87 rate is about +-0.003.
			if !est.Within(4) {
				t.Errorf("simulation disagrees with model: %s", est)
			}
		})
	}
}

func TestSimulationPropertyRandomGraphs(t *testing.T) {
	for _, variant := range []graph.Variant{graph.Independent, graph.Normalized} {
		variant := variant
		prop := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			g := graphtest.Random(rng, 3+rng.Intn(15), 4, variant)
			set := graphtest.RandomSet(rng, g, 1+rng.Intn(g.NumNodes()))
			predicted, err := cover.EvaluateSet(g, variant, set)
			if err != nil {
				return false
			}
			est, err := RunSet(g, set, Spec{Variant: variant, Requests: 30_000, Seed: seed}, predicted)
			if err != nil {
				return false
			}
			// Allow 5 sigma to keep the property test flake-free.
			return est.Within(5)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
			t.Errorf("variant %v: %v", variant, err)
		}
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Requests: 100, Purchases: 50, Rate: 0.5, StdErr: 0.05, Predicted: 0.52}
	if s := e.String(); !strings.Contains(s, "0.5000") || !strings.Contains(s, "0.5200") {
		t.Errorf("String = %q", s)
	}
}

func TestDeterministicSeed(t *testing.T) {
	g := fixture.Figure1Graph()
	set := []int32{1}
	a, err := RunSet(g, set, Spec{Variant: graph.Independent, Requests: 10_000, Seed: 7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSet(g, set, Spec{Variant: graph.Independent, Requests: 10_000, Seed: 7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Purchases != b.Purchases {
		t.Error("same seed must reproduce the simulation")
	}
}
