package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGateViolations(t *testing.T) {
	base := []Entry{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 5},
		{Name: "BenchmarkB/sub", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "BenchmarkRetired", NsPerOp: 50, AllocsPerOp: 0},
		{Name: "BenchmarkNoMem", NsPerOp: 10, BytesPerOp: -1, AllocsPerOp: -1},
	}
	for _, tc := range []struct {
		name  string
		fresh []Entry
		want  []string // substrings, one per expected violation
	}{
		{
			name: "clean",
			fresh: []Entry{
				{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 5},   // +20%: within 25%
				{Name: "BenchmarkB/sub", NsPerOp: 80, AllocsPerOp: 0}, // faster
				{Name: "BenchmarkNew", NsPerOp: 9e9, AllocsPerOp: 99}, // no baseline: not gated
			},
		},
		{
			name: "ns regression",
			fresh: []Entry{
				{Name: "BenchmarkA", NsPerOp: 1300, AllocsPerOp: 5}, // +30%
				{Name: "BenchmarkB/sub", NsPerOp: 100, AllocsPerOp: 0},
			},
			want: []string{"BenchmarkA: ns/op"},
		},
		{
			name: "alloc regression is zero-tolerance",
			fresh: []Entry{
				{Name: "BenchmarkA", NsPerOp: 900, AllocsPerOp: 6}, // faster but +1 alloc
				{Name: "BenchmarkB/sub", NsPerOp: 100, AllocsPerOp: 0},
			},
			want: []string{"BenchmarkA: allocs/op regressed 5 -> 6"},
		},
		{
			name: "missing allocs in baseline not gated",
			fresh: []Entry{
				{Name: "BenchmarkNoMem", NsPerOp: 11, AllocsPerOp: 7},
			},
		},
		{
			name: "both dimensions at once",
			fresh: []Entry{
				{Name: "BenchmarkB/sub", NsPerOp: 200, AllocsPerOp: 2},
			},
			want: []string{"BenchmarkB/sub: ns/op", "BenchmarkB/sub: allocs/op"},
		},
		{
			name:  "nothing matched",
			fresh: []Entry{{Name: "BenchmarkUnknown", NsPerOp: 1}},
			want:  []string{"no fresh benchmark matched"},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := gateViolations(tc.fresh, base, 0.25)
			if len(got) != len(tc.want) {
				t.Fatalf("violations = %v, want %d", got, len(tc.want))
			}
			for i, sub := range tc.want {
				if !strings.Contains(got[i], sub) {
					t.Errorf("violation %d = %q, want substring %q", i, got[i], sub)
				}
			}
		})
	}
}

func TestMinEntries(t *testing.T) {
	got := minEntries([]Entry{
		{Name: "BenchmarkA", NsPerOp: 1200, BytesPerOp: 64, AllocsPerOp: 3},
		{Name: "BenchmarkB", NsPerOp: 10, BytesPerOp: -1, AllocsPerOp: -1},
		{Name: "BenchmarkA", NsPerOp: 1000, BytesPerOp: 80, AllocsPerOp: 2},
		{Name: "BenchmarkA", NsPerOp: 1100, BytesPerOp: 64, AllocsPerOp: 3},
	})
	if len(got) != 2 {
		t.Fatalf("collapsed to %d entries, want 2: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkA" || got[1].Name != "BenchmarkB" {
		t.Fatalf("order not preserved: %+v", got)
	}
	a := got[0]
	if a.NsPerOp != 1000 || a.BytesPerOp != 64 || a.AllocsPerOp != 2 {
		t.Errorf("per-field minima wrong: %+v", a)
	}
}

// TestReadBaselineRejectsGarbage: the gate must fail loudly on a missing or
// malformed baseline rather than passing vacuously.
func TestReadBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if _, err := readBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	writeFile(t, bad, "{not json")
	if _, err := readBaseline(bad); err == nil {
		t.Error("malformed baseline accepted")
	}
	wrongVersion := filepath.Join(dir, "v9.json")
	writeFile(t, wrongVersion, `{"schemaVersion": 9, "benchmarks": []}`)
	if _, err := readBaseline(wrongVersion); err == nil {
		t.Error("unknown schemaVersion accepted")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
