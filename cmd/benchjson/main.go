// Command benchjson seeds the repository's performance trajectory: it
// runs the curated solver benchmarks from bench_test.go via `go test
// -bench`, parses the output, and writes a machine-readable snapshot
// (BENCH_solver.json by default) stamped with the git revision and Go
// toolchain — so any future hot-path change can be judged against the
// recorded ns/op and allocs/op instead of folklore. Driven by
// `make bench-json`; `make ci` runs a reduced smoke invocation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// defaultBench curates the kernels worth tracking over time: the
// per-variant gain kernels (the innermost loop of everything), the
// lazy-vs-scan and incremental-vs-scratch ablations (Section 5.4's cost
// accounting), the small greedy end-to-end, the minimization drivers and
// the public facade.
const defaultBench = "^(BenchmarkGainKernels|BenchmarkAblationLazyVsScan|BenchmarkAblationIncremental|BenchmarkFig4aGreedySmall|BenchmarkPublicSolve|BenchmarkFig4fMinCover|BenchmarkSolveCacheHitVsMiss|BenchmarkRemoteSolveWithRetries|BenchmarkTracePropagationOverhead|BenchmarkProfileLabelOverhead)$"

// File is the BENCH_*.json document.
type File struct {
	SchemaVersion int    `json:"schemaVersion"`
	Generated     string `json:"generated"` // RFC 3339
	GitSHA        string `json:"gitSHA"`
	GoVersion     string `json:"goVersion"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	CPUs          int    `json:"cpus"`
	Bench         string `json:"bench"`     // -bench pattern used
	Benchtime     string `json:"benchtime"` // -benchtime used
	Count         int    `json:"count,omitempty"`
	Package       string `json:"package"`

	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_solver.json", "output JSON file")
		bench     = flag.String("bench", defaultBench, "benchmark pattern passed to go test -bench")
		benchtime = flag.String("benchtime", "", "value passed to go test -benchtime (default 20x; in -gate mode, the baseline's recorded benchtime)")
		pkg       = flag.String("pkg", ".", "package holding the benchmarks")
		count     = flag.Int("count", 1, "value passed to go test -count (in -gate mode the per-name minimum over repetitions is compared)")
		quiet     = flag.Bool("quiet", false, "suppress the go test output relay on stderr")
		gate      = flag.String("gate", "", "baseline BENCH_*.json: run the benchmarks and fail on regression instead of writing a snapshot")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression in -gate mode (allocs/op may never grow)")
	)
	flag.Parse()
	var err error
	if *gate != "" {
		err = runGate(*gate, *bench, *benchtime, *pkg, *count, *quiet, *tolerance)
	} else {
		if *benchtime == "" {
			*benchtime = "20x"
		}
		err = run(*out, *bench, *benchtime, *pkg, *count, *quiet)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runBenchmarks executes `go test -bench` and returns the parsed result
// lines — the shared front half of the snapshot and gate modes.
func runBenchmarks(bench, benchtime, pkg string, count int, quiet bool) ([]Entry, error) {
	args := []string{"test", "-run=NONE", "-bench=" + bench, "-benchmem",
		fmt.Sprintf("-benchtime=%s", benchtime), fmt.Sprintf("-count=%d", count), pkg}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	if quiet {
		cmd.Stdout = &buf
	} else {
		// Relay live so long runs show progress, while keeping a copy to
		// parse.
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	entries, err := parseBench(&buf)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no benchmark results matched %q", bench)
	}
	return entries, nil
}

func run(out, bench, benchtime, pkg string, count int, quiet bool) error {
	entries, err := runBenchmarks(bench, benchtime, pkg, count, quiet)
	if err != nil {
		return err
	}
	// With -count > 1 the snapshot records per-benchmark minima — the same
	// estimator the gate uses, so the two sides stay comparable and a lucky
	// (or unlucky) single repetition cannot skew the committed trajectory.
	entries = minEntries(entries)
	doc := File{
		SchemaVersion: 1,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:        gitSHA(),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Bench:         bench,
		Benchtime:     benchtime,
		Count:         count,
		Package:       pkg,
		Benchmarks:    entries,
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s (git %s)\n", len(entries), out, doc.GitSHA)
	return nil
}

// gitSHA identifies the benchmarked revision: `git rev-parse` when run in
// a checkout (the normal `make bench-json` path), the linker's VCS stamp
// as fallback, "unknown" when neither exists.
func gitSHA() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}
