package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkGainKernels/independent").
	Name string `json:"name"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op (fractional for sub-ns kernels).
	NsPerOp float64 `json:"nsPerOp"`
	// BytesPerOp and AllocsPerOp come from -benchmem; -1 when absent.
	BytesPerOp  int64 `json:"bytesPerOp"`
	AllocsPerOp int64 `json:"allocsPerOp"`
}

// parseBench extracts benchmark result lines from `go test -bench` output.
// The format is one line per benchmark:
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op
//
// Unrelated lines (goos/pkg headers, PASS, ok) are skipped. Parsing stops
// with an error only on a malformed Benchmark line, never on foreign
// output, so the parser survives -v noise.
func parseBench(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, iterations, value, "ns/op".
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		e := Entry{Name: name, Iterations: iters, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			}
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
