package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// readBaseline loads a committed BENCH_*.json snapshot.
func readBaseline(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc File
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.SchemaVersion != 1 {
		return nil, fmt.Errorf("%s: unsupported schemaVersion %d", path, doc.SchemaVersion)
	}
	return &doc, nil
}

// minEntries collapses a -count>1 run to per-name minima. The minimum over
// repetitions is the standard noise estimator for gating: transient
// scheduler hiccups only ever push a measurement up, so the minimum is the
// closest observation to the true cost. First-seen order is preserved.
func minEntries(entries []Entry) []Entry {
	idx := make(map[string]int, len(entries))
	var out []Entry
	for _, e := range entries {
		i, ok := idx[e.Name]
		if !ok {
			idx[e.Name] = len(out)
			out = append(out, e)
			continue
		}
		if e.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = e.NsPerOp
		}
		if e.BytesPerOp >= 0 && (out[i].BytesPerOp < 0 || e.BytesPerOp < out[i].BytesPerOp) {
			out[i].BytesPerOp = e.BytesPerOp
		}
		if e.AllocsPerOp >= 0 && (out[i].AllocsPerOp < 0 || e.AllocsPerOp < out[i].AllocsPerOp) {
			out[i].AllocsPerOp = e.AllocsPerOp
		}
	}
	return out
}

// gateViolations compares a fresh run against the baseline entries: ns/op
// may drift up by at most tol (fractional), allocs/op may not grow at all.
// Benchmarks present only on one side are not violations — new benchmarks
// gate from their first committed snapshot — but a run where nothing
// matched the baseline is (the gate would otherwise pass vacuously).
func gateViolations(fresh, base []Entry, tol float64) []string {
	baseline := make(map[string]Entry, len(base))
	for _, e := range base {
		baseline[e.Name] = e
	}
	var out []string
	matched := 0
	for _, f := range fresh {
		b, ok := baseline[f.Name]
		if !ok {
			continue
		}
		matched++
		if b.NsPerOp > 0 && f.NsPerOp > b.NsPerOp*(1+tol) {
			out = append(out, fmt.Sprintf("%s: ns/op %.1f is %.0f%% over baseline %.1f (tolerance %.0f%%)",
				f.Name, f.NsPerOp, (f.NsPerOp/b.NsPerOp-1)*100, b.NsPerOp, tol*100))
		}
		if b.AllocsPerOp >= 0 && f.AllocsPerOp > b.AllocsPerOp {
			out = append(out, fmt.Sprintf("%s: allocs/op regressed %d -> %d (no growth allowed)",
				f.Name, b.AllocsPerOp, f.AllocsPerOp))
		}
	}
	if matched == 0 {
		out = append(out, "no fresh benchmark matched the baseline — bench pattern mismatch?")
	}
	return out
}

// runGate runs the benchmarks and fails on regression against the baseline
// snapshot instead of writing a new one. benchtime == "" inherits the
// benchtime the baseline was recorded with, keeping the two measurements
// comparable (cold-start amortization in particular).
func runGate(baselinePath, bench, benchtime, pkg string, count int, quiet bool, tol float64) error {
	base, err := readBaseline(baselinePath)
	if err != nil {
		return err
	}
	if benchtime == "" {
		benchtime = base.Benchtime
	}
	fresh, err := runBenchmarks(bench, benchtime, pkg, count, quiet)
	if err != nil {
		return err
	}
	fresh = minEntries(fresh)
	if viol := gateViolations(fresh, base.Benchmarks, tol); len(viol) > 0 {
		for _, v := range viol {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %s\n", v)
		}
		return fmt.Errorf("%d regression(s) against %s (git %s)", len(viol), baselinePath, base.GitSHA)
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate passed: %d benchmarks within %.0f%% ns/op and flat allocs vs %s\n",
		len(fresh), tol*100, baselinePath)
	return nil
}
