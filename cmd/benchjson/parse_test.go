package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: prefcover
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig4aGreedySmall    	      50	      1655 ns/op	     520 B/op	       7 allocs/op
BenchmarkGainKernels/independent               	      50	        34.34 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationLazyVsScan/scan               	      50	 208774460 ns/op	  354480 B/op	       7 allocs/op
BenchmarkPublicSolve-8                         	      50	       380.4 ns/op	     304 B/op	       7 allocs/op
BenchmarkNoMem-16	 1000000	     123 ns/op
PASS
ok  	prefcover	11.506s
`

func TestParseBench(t *testing.T) {
	entries, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries, want 5: %+v", len(entries), entries)
	}
	want := []struct {
		name   string
		iters  int64
		ns     float64
		bytes  int64
		allocs int64
	}{
		{"BenchmarkFig4aGreedySmall", 50, 1655, 520, 7},
		{"BenchmarkGainKernels/independent", 50, 34.34, 0, 0},
		{"BenchmarkAblationLazyVsScan/scan", 50, 208774460, 354480, 7},
		{"BenchmarkPublicSolve", 50, 380.4, 304, 7},
		{"BenchmarkNoMem", 1000000, 123, -1, -1},
	}
	for i, w := range want {
		e := entries[i]
		if e.Name != w.name || e.Iterations != w.iters || e.NsPerOp != w.ns ||
			e.BytesPerOp != w.bytes || e.AllocsPerOp != w.allocs {
			t.Errorf("entry %d = %+v, want %+v", i, e, w)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	entries, err := parseBench(strings.NewReader("PASS\nok prefcover 0.1s\n"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("entries=%v err=%v, want none", entries, err)
	}
}

// TestParseBenchSubNameWithDash makes sure only a trailing -GOMAXPROCS
// suffix is stripped, not dashes inside sub-benchmark names.
func TestParseBenchSubNameWithDash(t *testing.T) {
	entries, err := parseBench(strings.NewReader(
		"BenchmarkX/topkw-binsearch-8 \t 10\t 5.0 ns/op\n"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries=%v err=%v", entries, err)
	}
	if entries[0].Name != "BenchmarkX/topkw-binsearch" {
		t.Errorf("name = %q", entries[0].Name)
	}
}
