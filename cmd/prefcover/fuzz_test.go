package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"prefcover"
)

// FuzzGraphImport drives the CLI's auto-detecting graph loader (readGraph)
// with arbitrary file contents: the first byte routes to the JSON, binary
// or TSV decoder, and whatever survives decoding must be a structurally
// sound graph — consistent CSR edge counts, in-range endpoints, resolvable
// labels — that round-trips through the binary codec with its shape
// intact. Hostile input may only produce an error, never a panic and never
// a corrupt graph.
func FuzzGraphImport(f *testing.F) {
	f.Add([]byte("node\ta\t0.5\nnode\tb\t0.5\nedge\ta\tb\t0.5\n"))
	f.Add([]byte(`{"nodes":[{"label":"a","weight":1}],"edges":[]}`))
	f.Add([]byte("PCG1\x00\x00\x00\x00"))
	f.Add([]byte("{"))
	f.Add([]byte(""))
	seed := mustGenGraph(f)
	var bin bytes.Buffer
	if err := prefcover.WriteGraphBinary(&bin, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "graph.in")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := readGraph(path)
		if err != nil {
			return // rejection is the correct answer for corrupt input
		}
		checkGraphSound(t, g)

		// An accepted graph must survive the canonical binary codec with
		// its shape intact; a decoder that built inconsistent internal
		// state tends to fail right here.
		var buf bytes.Buffer
		if err := prefcover.WriteGraphBinary(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		back, err := prefcover.ReadGraphBinary(&buf)
		if err != nil {
			t.Fatalf("round trip rejected own output: %v", err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges",
				g.NumNodes(), back.NumNodes(), g.NumEdges(), back.NumEdges())
		}
	})
}

// checkGraphSound asserts the structural invariants every imported graph
// must satisfy regardless of weight semantics.
func checkGraphSound(t *testing.T, g *prefcover.Graph) {
	t.Helper()
	n := g.NumNodes()
	if n <= 0 {
		t.Fatal("accepted graph with no nodes")
	}
	edges := 0
	for v := int32(0); v < int32(n); v++ {
		dsts, ws := g.OutEdges(v)
		if len(dsts) != len(ws) {
			t.Fatalf("node %d: %d destinations but %d weights", v, len(dsts), len(ws))
		}
		for _, u := range dsts {
			if u < 0 || u >= int32(n) {
				t.Fatalf("edge (%d,%d) references node outside [0,%d)", v, u, n)
			}
		}
		edges += len(dsts)
	}
	if edges != g.NumEdges() {
		t.Fatalf("CSR holds %d edges, graph claims %d", edges, g.NumEdges())
	}
}

// mustGenGraph builds a small valid graph for seeding the corpus.
func mustGenGraph(f *testing.F) *prefcover.Graph {
	f.Helper()
	b := prefcover.NewBuilder(3, 2)
	b.AddLabeledNode("a", 0.5)
	b.AddLabeledNode("b", 0.3)
	b.AddLabeledNode("c", 0.2)
	b.AddLabeledEdge("a", "b", 0.4)
	b.AddLabeledEdge("b", "c", 0.6)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		f.Fatal(err)
	}
	return g
}
