package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"prefcover"
	"prefcover/adapt"
	"prefcover/clickstream"
	"prefcover/internal/trace"
)

// readClickstream opens and fully buffers a clickstream in the given
// format (auto-detected from the first byte when format is "auto": JSONL
// lines start with '{').
func readClickstream(path, format string) (*clickstream.Store, error) {
	file, closeIn, err := openIn(path)
	if err != nil {
		return nil, err
	}
	defer closeIn()
	f, err := maybeGzip(file, path)
	if err != nil {
		return nil, err
	}
	var src clickstream.Source
	switch format {
	case "tsv":
		src = clickstream.NewTSVReader(f)
	case "jsonl":
		src = clickstream.NewJSONLReader(f)
	case "auto":
		br := newPeekReader(f)
		first, err := br.peekByte()
		if err != nil {
			return nil, fmt.Errorf("reading clickstream: %w", err)
		}
		if first == '{' {
			src = clickstream.NewJSONLReader(br)
		} else {
			src = clickstream.NewTSVReader(br)
		}
	default:
		return nil, fmt.Errorf("unknown clickstream format %q (want tsv, jsonl or auto)", format)
	}
	return clickstream.ReadAll(src)
}

func runStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var (
		in     = fs.String("in", "-", "input clickstream (default stdin)")
		format = fs.String("format", "auto", "input format: tsv, jsonl or auto")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := readClickstream(*in, *format)
	if err != nil {
		return err
	}
	st, err := clickstream.CollectStats(store)
	if err != nil {
		return err
	}
	fmt.Printf("sessions:  %d\n", st.Sessions)
	fmt.Printf("purchases: %d (%.2f%% of sessions)\n", st.Purchases, pct(st.Purchases, st.Sessions))
	fmt.Printf("items:     %d\n", st.Items)
	fmt.Printf("clicks:    %d\n", st.Clicks)
	fmt.Printf("max alternatives per session: %d\n", st.MaxAlternatives)
	fmt.Printf("single-alternative share:     %.1f%% (normalized fit needs >= %.0f%%)\n",
		100*st.SingleAlternativeShare, 100*adapt.NormalizedFitThreshold)
	return nil
}

func runAdapt(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	var (
		in      = fs.String("in", "-", "input clickstream (default stdin)")
		format  = fs.String("format", "auto", "input format: tsv, jsonl or auto")
		out     = fs.String("out", "-", "output graph file (default stdout)")
		gformat = fs.String("graph-format", "tsv", "graph output format: tsv, json or binary")
		variant = fs.String("variant", "", "force variant (independent/normalized); empty = recommend from data")
		minPur  = fs.Int("min-purchases", 0, "drop outgoing edges of items purchased fewer times than this")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	store, err := readClickstream(*in, *format)
	if err != nil {
		return err
	}
	opts := adapt.Options{MinPurchases: *minPur, ComputeFitness: *variant == "", Ctx: ctx}
	if *variant != "" {
		v, err := prefcover.ParseVariant(*variant)
		if err != nil {
			return err
		}
		opts.Variant = v
	}
	g, rep, err := adapt.BuildGraph(store, opts)
	if err != nil {
		return err
	}
	chosen := opts.Variant
	if *variant == "" {
		rec, confident := rep.RecommendVariant()
		chosen = rec
		if rec == prefcover.Normalized {
			// Rebuild with fractional click counting.
			store.Reset()
			g, _, err = adapt.BuildGraph(store, adapt.Options{Variant: rec, MinPurchases: *minPur, Ctx: ctx})
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "recommended variant: %s (confident=%v, single-alt=%.1f%%, nmi=%.3f)\n",
			rec, confident, 100*rep.SingleAlternativeShare, rep.MeanPairwiseNMI)
	}
	fmt.Fprintf(os.Stderr, "graph: %d items, %d edges (variant %s)\n", g.NumNodes(), g.NumEdges(), chosen)
	w, closeOut, err := createOut(*out)
	if err != nil {
		return err
	}
	switch *gformat {
	case "tsv":
		err = prefcover.WriteGraphTSV(w, g)
	case "json":
		err = prefcover.WriteGraphJSON(w, g)
	case "binary":
		err = prefcover.WriteGraphBinary(w, g)
	default:
		err = fmt.Errorf("unknown graph format %q", *gformat)
	}
	if err != nil {
		closeOut()
		return err
	}
	return closeOut()
}

// readGraph loads a graph in tsv, json or binary format (auto-detected).
func readGraph(path string) (*prefcover.Graph, error) {
	file, closeIn, err := openIn(path)
	if err != nil {
		return nil, err
	}
	defer closeIn()
	f, err := maybeGzip(file, path)
	if err != nil {
		return nil, err
	}
	br := newPeekReader(f)
	first, err := br.peekByte()
	if err != nil {
		return nil, fmt.Errorf("reading graph: %w", err)
	}
	switch first {
	case '{':
		return prefcover.ReadGraphJSON(br, prefcover.BuildOptions{})
	case 'P':
		return prefcover.ReadGraphBinary(br)
	default:
		return prefcover.ReadGraphTSV(br, prefcover.BuildOptions{})
	}
}

func runSolve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	var (
		in         = fs.String("in", "-", "input graph (default stdin)")
		variant    = fs.String("variant", "independent", "variant: independent or normalized")
		k          = fs.Int("k", 0, "retained-set budget (budget mode)")
		threshold  = fs.Float64("threshold", 0, "target cover in (0,1] (minimization mode)")
		workers    = fs.Int("workers", 1, "parallel scan workers")
		lazy       = fs.Bool("lazy", true, "use lazy (CELF) evaluation")
		strategy   = fs.String("strategy", "", "explicit strategy: scan, parallel, lazy, lazyflat or sketch; overrides -lazy/-workers")
		stochastic = fs.Float64("stochastic", 0, "stochastic-greedy epsilon in (0,1); randomized, overrides -lazy")
		seed       = fs.Int64("seed", 1, "seed for -stochastic")
		pruneMinW  = fs.Float64("prune-min-weight", 0, "drop alternative edges below this weight before solving")
		pruneMaxD  = fs.Int("prune-max-degree", 0, "keep only this many heaviest alternatives per item before solving")
		pinFile    = fs.String("pin", "", "file with must-stock labels, one per line, retained before the greedy fill")
		affected   = fs.Int("affected", 10, "how many most-affected non-retained items to report")
		setOut     = fs.String("set-out", "", "also write the retained labels, one per line, to this file")
		timeout    = fs.Duration("timeout", 0, "abort the solve after this long (0 = no deadline); also canceled by SIGINT/SIGTERM")
		progress   = fs.Int("progress", 0, "log solver progress to stderr every N selections (0 = off)")
		traceOut   = fs.String("trace", "", "write a Chrome trace-event JSON of this run (parse/solve phases, one span per iteration) to this file; load in Perfetto")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	v, err := prefcover.ParseVariant(*variant)
	if err != nil {
		return err
	}
	// The flight recorder wraps the whole run; phase spans below only
	// materialize when -trace is set (root stays nil otherwise).
	var root *trace.Span
	if *traceOut != "" {
		root = trace.New(1).Root("prefcover solve", "")
		defer func() {
			root.End()
			if err := writeTraceFile(*traceOut, root); err != nil {
				fmt.Fprintf(os.Stderr, "writing trace: %v\n", err)
			}
		}()
	}
	parseSpan := root.Child("parse")
	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	parseSpan.SetAttr("nodes", g.NumNodes())
	parseSpan.SetAttr("edges", g.NumEdges())
	parseSpan.End()
	if *pruneMinW > 0 || *pruneMaxD > 0 {
		sparsifySpan := root.Child("sparsify")
		res, err := prefcover.Sparsify(g, prefcover.SparsifyOptions{
			MinWeight: *pruneMinW, MaxOutDegree: *pruneMaxD,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pruned %d -> %d edges (certified max cover loss %.5f)\n",
			res.EdgesBefore, res.EdgesAfter, res.LossBound)
		g = res.Graph
		sparsifySpan.SetAttr("edges", g.NumEdges())
		sparsifySpan.End()
	}
	opts := prefcover.Options{
		Variant: v, K: *k, Threshold: *threshold, Workers: *workers, Lazy: *lazy,
	}
	if opts.Strategy, err = prefcover.ParseStrategy(*strategy); err != nil {
		return err
	}
	if *pinFile != "" {
		data, err := os.ReadFile(*pinFile)
		if err != nil {
			return err
		}
		var labels []string
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				labels = append(labels, line)
			}
		}
		opts.Pinned, err = prefcover.LookupAll(g, labels)
		if err != nil {
			return err
		}
	}
	if *stochastic > 0 {
		opts.Lazy = false
		opts.StochasticEpsilon = *stochastic
		opts.Seed = *seed
	}
	solveSpan := root.Child("solve")
	recordIteration := trace.IterationRecorder(solveSpan)
	logProgress := func(prefcover.ProgressEvent) {}
	if *progress > 0 {
		every := *progress
		logProgress = func(ev prefcover.ProgressEvent) {
			if ev.Step%every == 0 {
				fmt.Fprintf(os.Stderr, "step %d: %s gain=%.6f cover=%.4f evals=%d (+%d, reeval %d)\n",
					ev.Step, ev.Strategy, ev.Gain, ev.Cover, ev.TotalEvals, ev.Evaluated, ev.Reevaluated)
			}
		}
	}
	if *progress > 0 || root != nil {
		opts.Progress = func(ev prefcover.ProgressEvent) {
			recordIteration(ev)
			logProgress(ev)
		}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sol, err := prefcover.SolveContext(ctx, g, opts)
	if sol != nil {
		solveSpan.SetAttr("iterations", len(sol.Order))
		solveSpan.SetAttr("gainEvals", sol.GainEvals)
		solveSpan.SetAttr("cover", sol.Cover)
	}
	solveSpan.End()
	if err != nil {
		if sol != nil && len(sol.Order) > 0 {
			fmt.Fprintf(os.Stderr, "solve stopped after %d selections (cover %.4f): %v\n",
				len(sol.Order), sol.Cover, err)
		}
		return err
	}
	if *threshold > 0 && !sol.Reached {
		fmt.Fprintf(os.Stderr, "warning: threshold %.3f not reachable, best cover %.4f\n", *threshold, sol.Cover)
	}
	reportSpan := root.Child("report")
	report := prefcover.NewReport(g, v, sol, *affected)
	if _, err := report.WriteTo(os.Stdout); err != nil {
		return err
	}
	reportSpan.End()
	if *setOut != "" {
		var sb strings.Builder
		for _, item := range report.Retained {
			sb.WriteString(item.Label)
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*setOut, []byte(sb.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func runEval(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	var (
		in      = fs.String("in", "-", "input graph (default stdin)")
		variant = fs.String("variant", "independent", "variant: independent or normalized")
		setPath = fs.String("set", "", "file with retained labels, one per line (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *setPath == "" {
		return fmt.Errorf("-set is required")
	}
	v, err := prefcover.ParseVariant(*variant)
	if err != nil {
		return err
	}
	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*setPath)
	if err != nil {
		return err
	}
	var labels []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			labels = append(labels, line)
		}
	}
	sort.Strings(labels)
	cover, err := prefcover.EvaluateLabels(g, v, labels)
	if err != nil {
		return err
	}
	fmt.Printf("retained: %d items\ncover:    %.4f (%.2f%%)\n", len(labels), cover, 100*cover)
	return nil
}

// writeTraceFile dumps one completed trace tree as Chrome trace-event
// JSON and reports where it went.
func writeTraceFile(path string, root *trace.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeSpan(f, root); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: %d spans written to %s (load in chrome://tracing or ui.perfetto.dev)\n",
		root.NumSpans(), path)
	return nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// peekReader lets the pipeline sniff the first byte of a stream without
// consuming it.
type peekReader struct {
	r      io.Reader
	peeked []byte
}

func newPeekReader(r io.Reader) *peekReader { return &peekReader{r: r} }

func (pr *peekReader) peekByte() (byte, error) {
	if len(pr.peeked) > 0 {
		return pr.peeked[0], nil
	}
	var b [1]byte
	n, err := pr.r.Read(b[:])
	for n == 0 && err == nil {
		n, err = pr.r.Read(b[:])
	}
	if err != nil {
		return 0, err
	}
	pr.peeked = append(pr.peeked, b[0])
	return b[0], nil
}

func (pr *peekReader) Read(p []byte) (int, error) {
	if len(pr.peeked) > 0 {
		n := copy(p, pr.peeked)
		pr.peeked = pr.peeked[n:]
		return n, nil
	}
	return pr.r.Read(p)
}
