package main

// Error-path tests for the remote subcommand: what the user sees when the
// server is down, rejects the request outright, or sheds load — and that
// the retry discipline distinguishes those cases (4xx config errors fail
// fast; 429s are retried, honoring Retry-After when advertised).

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// deadServerURL reserves a port and releases it, yielding an address with
// nothing listening.
func deadServerURL(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + l.Addr().String()
	l.Close()
	return url
}

func TestRemoteSolveConnectionRefused(t *testing.T) {
	err := runRemoteSolve(context.Background(), []string{
		"-server", deadServerURL(t), "-graph", "g", "-k", "3",
		"-retries", "2", "-retry-base", "1ms",
	})
	if err == nil {
		t.Fatal("solve against a dead server should fail")
	}
	if !strings.Contains(err.Error(), "connection refused") {
		t.Errorf("error should surface the transport cause, got: %v", err)
	}
	// The transport error is transient: the configured retries must have
	// been spent before giving up.
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Errorf("error should report the exhausted attempts, got: %v", err)
	}
}

func TestRemotePushUnsupportedMediaTypeFailsFast(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("X-Request-ID", "req-415")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnsupportedMediaType)
		json.NewEncoder(w).Encode(map[string]string{
			"error":     `unsupported content type "text/csv"`,
			"requestId": "req-415",
		})
	}))
	defer ts.Close()

	err := runRemotePush(context.Background(), []string{
		"-server", ts.URL, "-name", "g",
		"-in", writeTemp(t, "g.json", `{"nodes":[{"label":"a","weight":1}]}`),
		"-retries", "3", "-retry-base", "1ms",
	})
	if err == nil {
		t.Fatal("415 should be an error")
	}
	// The terminal message must quote the server's own diagnosis and the
	// request ID, so the exact server-side log lines are findable.
	for _, want := range []string{`unsupported content type "text/csv"`, "req-415", "415"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should contain %q", err, want)
		}
	}
	// A 4xx config error is not transient: exactly one attempt, despite
	// retries being enabled.
	if n := hits.Load(); n != 1 {
		t.Errorf("server saw %d attempts, want 1 (415 must not be retried)", n)
	}
}

// throttleServer sheds the first fail requests with a 429 (optionally
// advertising Retry-After), then serves a solve response.
func throttleServer(t *testing.T, fail int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		w.Header().Set("X-Request-ID", "req-429")
		w.Header().Set("Content-Type", "application/json")
		if n <= int64(fail) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "solver saturated", "requestId": "req-429"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"variant": "independent", "k": 3, "cover": 0.5, "order": []string{"a"}})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestRemoteSolveRetriesThrottleWithRetryAfter(t *testing.T) {
	ts, hits := throttleServer(t, 2, "0")
	err := runRemoteSolve(context.Background(), []string{
		"-server", ts.URL, "-graph", "g", "-k", "3",
		"-retries", "3", "-retry-base", "1ms",
	})
	if err != nil {
		t.Fatalf("solve should succeed after shed requests: %v", err)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3 (two 429s, then success)", n)
	}
}

func TestRemoteSolveRetriesThrottleWithoutRetryAfter(t *testing.T) {
	// No Retry-After header: pure exponential backoff still retries 429.
	ts, hits := throttleServer(t, 1, "")
	err := runRemoteSolve(context.Background(), []string{
		"-server", ts.URL, "-graph", "g", "-k", "3",
		"-retries", "2", "-retry-base", "1ms",
	})
	if err != nil {
		t.Fatalf("solve should succeed after one shed request: %v", err)
	}
	if n := hits.Load(); n != 2 {
		t.Errorf("server saw %d attempts, want 2", n)
	}
}

func TestRemoteSolveGivesUpOnPersistentThrottle(t *testing.T) {
	ts, hits := throttleServer(t, 1<<30, "0")
	err := runRemoteSolve(context.Background(), []string{
		"-server", ts.URL, "-graph", "g", "-k", "3",
		"-retries", "2", "-retry-base", "1ms",
	})
	if err == nil {
		t.Fatal("persistent 429 should eventually fail")
	}
	for _, want := range []string{"giving up after 3 attempts", "solver saturated", "req-429"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should contain %q", err, want)
		}
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d attempts, want 3", n)
	}
}

func TestRemoteJobWaitCancelMidPoll(t *testing.T) {
	// A job that never finishes: submission is accepted, every poll says
	// "running". Canceling the context must end the wait loop promptly with
	// the context's error, not hang or mask it.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost {
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]any{"id": "j1", "state": "queued"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id": "j1", "state": "running",
			"progress": map[string]any{"step": 1, "cover": 0.1},
		})
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- runRemoteJob(ctx, []string{
			"-server", ts.URL, "-graph", "g", "-k", "3", "-wait",
			"-interval", "5ms", "-retries", "0",
		})
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled wait returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled -wait did not return")
	}
}
