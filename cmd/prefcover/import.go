package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"prefcover/clickstream"
)

func runImport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	var (
		clicks = fs.String("clicks", "", "yoochoose-clicks.dat path (optional, .gz ok)")
		buys   = fs.String("buys", "", "yoochoose-buys.dat path (optional, .gz ok)")
		format = fs.String("format", "tsv", "output format: tsv or jsonl")
		out    = fs.String("out", "-", "output clickstream (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clicks == "" && *buys == "" {
		return fmt.Errorf("need -clicks and/or -buys")
	}
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	open := func(path string) (io.Reader, error) {
		if path == "" {
			return nil, nil
		}
		f, closeIn, err := openIn(path)
		if err != nil {
			return nil, err
		}
		closers = append(closers, closeIn)
		return maybeGzip(f, path)
	}
	clicksReader, err := open(*clicks)
	if err != nil {
		return err
	}
	buysReader, err := open(*buys)
	if err != nil {
		return err
	}
	store, stats, err := clickstream.ParseYooChoose(clicksReader, buysReader)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "parsed %d click rows, %d buy rows -> %d sessions (%d purchases, %d splits)\n",
		stats.ClickRows, stats.BuyRows, store.Len(), stats.BuySessions, stats.SplitSessions)
	w, closeOut, err := createOut(*out)
	if err != nil {
		return err
	}
	var werr error
	switch *format {
	case "tsv":
		tw := clickstream.NewTSVWriter(w)
		for i := range store.Sessions() {
			if werr = tw.Write(&store.Sessions()[i]); werr != nil {
				break
			}
		}
		if werr == nil {
			werr = tw.Flush()
		}
	case "jsonl":
		jw := clickstream.NewJSONLWriter(w)
		for i := range store.Sessions() {
			if werr = jw.Write(&store.Sessions()[i]); werr != nil {
				break
			}
		}
		if werr == nil {
			werr = jw.Flush()
		}
	default:
		werr = fmt.Errorf("unknown format %q (want tsv or jsonl)", *format)
	}
	if werr != nil {
		closeOut()
		return werr
	}
	return closeOut()
}
