package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prefcover"
)

func TestPeekReader(t *testing.T) {
	pr := newPeekReader(strings.NewReader("hello"))
	b, err := pr.peekByte()
	if err != nil || b != 'h' {
		t.Fatalf("peek = %c, %v", b, err)
	}
	// Peeking twice is stable.
	b2, err := pr.peekByte()
	if err != nil || b2 != 'h' {
		t.Fatalf("second peek = %c, %v", b2, err)
	}
	all, err := io.ReadAll(pr)
	if err != nil || string(all) != "hello" {
		t.Fatalf("read after peek = %q, %v", all, err)
	}
}

func TestPeekReaderEmpty(t *testing.T) {
	pr := newPeekReader(strings.NewReader(""))
	if _, err := pr.peekByte(); err == nil {
		t.Fatal("peek on empty stream should fail")
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadClickstreamAutoDetect(t *testing.T) {
	tsv := writeTemp(t, "c.tsv", "s1\ta\tb,c\ns2\tb\t\n")
	jsonl := writeTemp(t, "c.jsonl", `{"id":"s1","purchase":"a","clicks":["b"]}`+"\n")
	for _, tc := range []struct {
		path string
		want int
	}{{tsv, 2}, {jsonl, 1}} {
		store, err := readClickstream(tc.path, "auto")
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if store.Len() != tc.want {
			t.Errorf("%s: %d sessions, want %d", tc.path, store.Len(), tc.want)
		}
	}
	if _, err := readClickstream(tsv, "bogus"); err == nil {
		t.Error("unknown format should fail")
	}
	if _, err := readClickstream(filepath.Join(t.TempDir(), "missing"), "auto"); err == nil {
		t.Error("missing file should fail")
	}
}

func sampleGraph(t *testing.T) *prefcover.Graph {
	t.Helper()
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("x", 0.7)
	b.AddLabeledNode("y", 0.3)
	b.AddLabeledEdge("x", "y", 0.5)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReadGraphAutoDetect(t *testing.T) {
	g := sampleGraph(t)
	dir := t.TempDir()
	var tsv, js, bin bytes.Buffer
	if err := prefcover.WriteGraphTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := prefcover.WriteGraphJSON(&js, g); err != nil {
		t.Fatal(err)
	}
	if err := prefcover.WriteGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"g.tsv": tsv.Bytes(), "g.json": js.Bytes(), "g.bin": bin.Bytes(),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		back, err := readGraph(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumNodes() != 2 || back.NumEdges() != 1 {
			t.Errorf("%s: shape lost", name)
		}
	}
}

func TestOpenInCreateOut(t *testing.T) {
	f, closeIn, err := openIn("-")
	if err != nil || f != os.Stdin {
		t.Fatalf("openIn(-) = %v, %v", f, err)
	}
	closeIn()
	w, closeOut, err := createOut("")
	if err != nil || w != os.Stdout {
		t.Fatalf("createOut() = %v, %v", w, err)
	}
	if err := closeOut(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.txt")
	w, closeOut, err = createOut(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteString("data"); err != nil {
		t.Fatal(err)
	}
	if err := closeOut(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "data" {
		t.Fatalf("file contents %q, %v", got, err)
	}
}

func TestPct(t *testing.T) {
	if pct(1, 4) != 25 {
		t.Error("pct(1,4)")
	}
	if pct(1, 0) != 0 {
		t.Error("pct by zero")
	}
}
