package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEndToEndPipeline drives the CLI stages as a user would, through
// files: gen -> stats -> adapt -> solve -> eval.
func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()
	sessions := filepath.Join(dir, "sessions.tsv")
	graphPath := filepath.Join(dir, "graph.tsv")
	setPath := filepath.Join(dir, "retained.txt")

	if err := runGen(context.Background(), []string{"-preset", "YC", "-scale", "0.004", "-seed", "5", "-out", sessions}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if fi, err := os.Stat(sessions); err != nil || fi.Size() == 0 {
		t.Fatalf("gen produced nothing: %v", err)
	}
	if err := runStats(context.Background(), []string{"-in", sessions}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := runAdapt(context.Background(), []string{"-in", sessions, "-out", graphPath, "-variant", "i"}); err != nil {
		t.Fatalf("adapt: %v", err)
	}
	if err := runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "20", "-set-out", setPath}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	data, err := os.ReadFile(setPath)
	if err != nil {
		t.Fatalf("set file: %v", err)
	}
	labels := strings.Fields(string(data))
	if len(labels) != 20 {
		t.Fatalf("retained %d labels, want 20", len(labels))
	}
	if err := runEval(context.Background(), []string{"-in", graphPath, "-variant", "i", "-set", setPath}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := runSimulate(context.Background(), []string{"-in", graphPath, "-variant", "i", "-set", setPath, "-requests", "20000"}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
}

func TestSimulateValidation(t *testing.T) {
	if err := runSimulate(context.Background(), []string{}); err == nil {
		t.Error("missing -set should fail")
	}
	if err := runSimulate(context.Background(), []string{"-variant", "bogus", "-set", "x"}); err == nil {
		t.Error("bad variant should fail")
	}
}

// TestAdaptAutoVariantCLI exercises the variant-recommendation path and
// the binary graph format.
func TestAdaptAutoVariantCLI(t *testing.T) {
	dir := t.TempDir()
	sessions := filepath.Join(dir, "sessions.tsv")
	graphPath := filepath.Join(dir, "graph.bin")
	// PM preset fits the Normalized variant.
	if err := runGen(context.Background(), []string{"-preset", "PM", "-scale", "0.0003", "-seed", "3", "-out", sessions}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runAdapt(context.Background(), []string{"-in", sessions, "-out", graphPath, "-graph-format", "binary"}); err != nil {
		t.Fatalf("adapt: %v", err)
	}
	if err := runSolve(context.Background(), []string{"-in", graphPath, "-variant", "n", "-threshold", "0.5"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
}

// TestImportCLI converts a YooChoose pair (one gzipped) and feeds the
// result back through adapt.
func TestImportCLI(t *testing.T) {
	dir := t.TempDir()
	clicks := filepath.Join(dir, "clicks.dat")
	sessions := filepath.Join(dir, "sessions.jsonl")
	if err := os.WriteFile(clicks, []byte("1,t,A,0\n1,t,B,0\n2,t,B,0\n2,t,A,0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	buys := filepath.Join(dir, "buys.dat")
	if err := os.WriteFile(buys, []byte("1,t,A,0,1\n2,t,B,0,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runImport(context.Background(), []string{"-clicks", clicks, "-buys", buys, "-format", "jsonl", "-out", sessions}); err != nil {
		t.Fatalf("import: %v", err)
	}
	graphPath := filepath.Join(dir, "graph.tsv")
	if err := runAdapt(context.Background(), []string{"-in", sessions, "-out", graphPath, "-variant", "n"}); err != nil {
		t.Fatalf("adapt: %v", err)
	}
	data, err := os.ReadFile(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "node\tA\t0.5") {
		t.Errorf("graph missing node A:\n%s", data)
	}
}

func TestImportValidation(t *testing.T) {
	if err := runImport(context.Background(), []string{}); err == nil {
		t.Error("no inputs should fail")
	}
	if err := runImport(context.Background(), []string{"-clicks", filepath.Join(t.TempDir(), "nope")}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestGenValidation(t *testing.T) {
	if err := runGen(context.Background(), []string{"-preset", "NOPE"}); err == nil {
		t.Error("unknown preset should fail")
	}
	if err := runGen(context.Background(), []string{"-preset", "YC", "-scale", "0.001", "-format", "bogus", "-out", filepath.Join(t.TempDir(), "x")}); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestSolveWithPruneAndStochastic(t *testing.T) {
	dir := t.TempDir()
	sessions := filepath.Join(dir, "s.tsv")
	graphPath := filepath.Join(dir, "g.tsv")
	if err := runGen(context.Background(), []string{"-preset", "YC", "-scale", "0.004", "-seed", "9", "-out", sessions}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runAdapt(context.Background(), []string{"-in", sessions, "-out", graphPath, "-variant", "i"}); err != nil {
		t.Fatalf("adapt: %v", err)
	}
	if err := runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "10",
		"-prune-min-weight", "0.05", "-stochastic", "0.2", "-seed", "3"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
}

func TestSolveValidation(t *testing.T) {
	if err := runSolve(context.Background(), []string{"-in", filepath.Join(t.TempDir(), "missing"), "-k", "1"}); err == nil {
		t.Error("missing graph should fail")
	}
	if err := runSolve(context.Background(), []string{"-variant", "bogus", "-k", "1"}); err == nil {
		t.Error("bad variant should fail")
	}
}

func TestEvalValidation(t *testing.T) {
	if err := runEval(context.Background(), []string{}); err == nil {
		t.Error("missing -set should fail")
	}
}
