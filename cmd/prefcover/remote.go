package main

// The remote subcommand is the thin client for a running prefcoverd: push
// a graph into the server's registry, solve it by reference through the
// server's prefix-aware cache, or run the solve as an async job and poll
// it to completion. Everything speaks the /v1/graphs, /v1/solve and
// /v1/jobs JSON API; the heavy lifting stays server-side, so the same
// graph uploaded once serves any number of budget queries with zero
// re-parsing and (warm cache) zero solver work.
//
//	prefcover remote push  -server URL -name yc [-in graph.json] [-format json]
//	prefcover remote solve -server URL -graph yc -variant i -k 100
//	prefcover remote job   -server URL -graph yc -variant i -k 100 [-wait]
//	prefcover remote job   -server URL -status ID | -cancel ID

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func runRemote(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: prefcover remote push|solve|job [flags] (see prefcover remote <verb> -h)")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "push":
		return runRemotePush(ctx, rest)
	case "solve":
		return runRemoteSolve(ctx, rest)
	case "job":
		return runRemoteJob(ctx, rest)
	default:
		return fmt.Errorf("unknown remote verb %q (want push, solve or job)", verb)
	}
}

// remoteDo issues one API request and decodes the JSON reply (or surfaces
// the server's JSON error envelope as an error).
func remoteDo(ctx context.Context, method, url string, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error     string `json:"error"`
			RequestID string `json:"requestId"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s (%s, request %s)", method, url, apiErr.Error, resp.Status, apiErr.RequestID)
		}
		return fmt.Errorf("%s %s: %s", method, url, resp.Status)
	}
	if out == nil || len(bytes.TrimSpace(data)) == 0 {
		return nil
	}
	return json.Unmarshal(data, out)
}

// printJSON writes v to stdout, indented for humans.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runRemotePush(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote push", flag.ExitOnError)
	var (
		server = fs.String("server", "http://localhost:8080", "prefcoverd base URL")
		name   = fs.String("name", "", "registry name for the graph (required)")
		in     = fs.String("in", "-", "graph file (default stdin)")
		format = fs.String("format", "json", "wire format of the input: json, binary or tsv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("remote push: -name is required")
	}
	var contentType string
	switch *format {
	case "json":
		contentType = "application/json"
	case "binary":
		contentType = "application/octet-stream"
	case "tsv":
		contentType = "text/tab-separated-values"
	default:
		return fmt.Errorf("remote push: unknown -format %q (want json, binary or tsv)", *format)
	}
	f, closeIn, err := openIn(*in)
	if err != nil {
		return err
	}
	defer closeIn()
	var info map[string]any
	url := strings.TrimRight(*server, "/") + "/v1/graphs/" + *name
	if err := remoteDo(ctx, http.MethodPut, url, contentType, f, &info); err != nil {
		return err
	}
	return printJSON(info)
}

// solveQuery renders the shared solver parameters as a query string.
func solveQuery(variant string, k int, threshold float64, lazy bool, workers int, pins []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "?variant=%s", variant)
	if k > 0 {
		fmt.Fprintf(&sb, "&k=%d", k)
	}
	if threshold > 0 {
		fmt.Fprintf(&sb, "&threshold=%g", threshold)
	}
	if !lazy {
		sb.WriteString("&lazy=0")
	}
	if workers > 1 {
		fmt.Fprintf(&sb, "&workers=%d", workers)
	}
	for _, p := range pins {
		fmt.Fprintf(&sb, "&pin=%s", p)
	}
	return sb.String()
}

// splitPins turns the comma-separated -pins flag into labels.
func splitPins(flagVal string) []string {
	if flagVal == "" {
		return nil
	}
	parts := strings.Split(flagVal, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runRemoteSolve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote solve", flag.ExitOnError)
	var (
		server    = fs.String("server", "http://localhost:8080", "prefcoverd base URL")
		graphRef  = fs.String("graph", "", "registered graph name (required)")
		variant   = fs.String("variant", "independent", "variant: independent or normalized")
		k         = fs.Int("k", 0, "retained-set budget (budget mode)")
		threshold = fs.Float64("threshold", 0, "target cover in (0,1] (minimization mode)")
		lazy      = fs.Bool("lazy", true, "use lazy (CELF) evaluation")
		workers   = fs.Int("workers", 1, "parallel scan workers")
		pins      = fs.String("pins", "", "comma-separated must-stock labels, retained before the greedy fill")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphRef == "" {
		return fmt.Errorf("remote solve: -graph is required")
	}
	body, _ := json.Marshal(map[string]string{"graph_ref": *graphRef})
	url := strings.TrimRight(*server, "/") + "/v1/solve" +
		solveQuery(*variant, *k, *threshold, *lazy, *workers, splitPins(*pins))
	var out map[string]any
	if err := remoteDo(ctx, http.MethodPost, url, "application/json", bytes.NewReader(body), &out); err != nil {
		return err
	}
	return printJSON(out)
}

func runRemoteJob(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote job", flag.ExitOnError)
	var (
		server    = fs.String("server", "http://localhost:8080", "prefcoverd base URL")
		graphRef  = fs.String("graph", "", "registered graph name (submits a new job)")
		variant   = fs.String("variant", "independent", "variant: independent or normalized")
		k         = fs.Int("k", 0, "retained-set budget (budget mode)")
		threshold = fs.Float64("threshold", 0, "target cover in (0,1] (minimization mode)")
		lazy      = fs.Bool("lazy", true, "use lazy (CELF) evaluation")
		workers   = fs.Int("workers", 1, "parallel scan workers")
		pins      = fs.String("pins", "", "comma-separated must-stock labels")
		wait      = fs.Bool("wait", false, "poll the submitted job until it finishes and print the final state")
		interval  = fs.Duration("interval", 500*time.Millisecond, "polling interval for -wait")
		status    = fs.String("status", "", "print the state of this job id and exit")
		cancel    = fs.String("cancel", "", "cancel this job id and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*server, "/")
	switch {
	case *status != "":
		var out map[string]any
		if err := remoteDo(ctx, http.MethodGet, base+"/v1/jobs/"+*status, "", nil, &out); err != nil {
			return err
		}
		return printJSON(out)
	case *cancel != "":
		var out map[string]any
		if err := remoteDo(ctx, http.MethodDelete, base+"/v1/jobs/"+*cancel, "", nil, &out); err != nil {
			return err
		}
		return printJSON(out)
	case *graphRef == "":
		return fmt.Errorf("remote job: need -graph (submit), -status ID or -cancel ID")
	}

	payload := map[string]any{"graph_ref": *graphRef, "variant": *variant}
	if *k > 0 {
		payload["k"] = *k
	}
	if *threshold > 0 {
		payload["threshold"] = *threshold
	}
	if !*lazy {
		payload["lazy"] = false
	}
	if *workers > 1 {
		payload["workers"] = *workers
	}
	if ps := splitPins(*pins); len(ps) > 0 {
		payload["pins"] = ps
	}
	body, _ := json.Marshal(payload)
	var submitted map[string]any
	if err := remoteDo(ctx, http.MethodPost, base+"/v1/jobs", "application/json", bytes.NewReader(body), &submitted); err != nil {
		return err
	}
	id, _ := submitted["id"].(string)
	if !*wait || id == "" {
		return printJSON(submitted)
	}
	for {
		var snap map[string]any
		if err := remoteDo(ctx, http.MethodGet, base+"/v1/jobs/"+id, "", nil, &snap); err != nil {
			return err
		}
		switch snap["state"] {
		case "done", "failed", "canceled":
			return printJSON(snap)
		}
		if state, ok := snap["state"].(string); ok {
			if prog, ok := snap["progress"].(map[string]any); ok {
				fmt.Fprintf(os.Stderr, "job %s: %s step=%v cover=%v\n", id, state, prog["step"], prog["cover"])
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(*interval):
		}
	}
}
