package main

// The remote subcommand is the thin client for a running prefcoverd: push
// a graph into the server's registry, solve it by reference through the
// server's prefix-aware cache, or run the solve as an async job and poll
// it to completion. Everything speaks the /v1/graphs, /v1/solve and
// /v1/jobs JSON API; the heavy lifting stays server-side, so the same
// graph uploaded once serves any number of budget queries with zero
// re-parsing and (warm cache) zero solver work.
//
// Transient failures — connection errors, 429/503 load shedding (the
// server prefers rejecting to queueing), 5xx — are retried with jittered
// exponential backoff on every idempotent call: pushes (PUT is a full
// replace), reference solves and job polling (reads), and job submission,
// which carries a generated Idempotency-Key so a resent POST lands on the
// already-enqueued job instead of creating a second one. Cancellation is
// deliberately not retried: a lost DELETE response is indistinguishable
// from a successful one, and re-sending would just 404.
//
//	prefcover remote push  -server URL -name yc [-in graph.json] [-format json]
//	prefcover remote solve -server URL -graph yc -variant i -k 100
//	prefcover remote job   -server URL -graph yc -variant i -k 100 [-wait]
//	prefcover remote job   -server URL -status ID | -cancel ID

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"prefcover/internal/apiclient"
	"prefcover/internal/retry"
	"prefcover/internal/trace"
)

func runRemote(ctx context.Context, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: prefcover remote push|solve|job [flags] (see prefcover remote <verb> -h)")
	}
	verb, rest := args[0], args[1:]
	switch verb {
	case "push":
		return runRemotePush(ctx, rest)
	case "solve":
		return runRemoteSolve(ctx, rest)
	case "job":
		return runRemoteJob(ctx, rest)
	default:
		return fmt.Errorf("unknown remote verb %q (want push, solve or job)", verb)
	}
}

// retryFlags registers the shared retry knobs on fs and returns the
// resulting policy builder (flag values are only valid after Parse). The
// policy shape itself comes from internal/apiclient, the same constructor
// the load generator uses, so `prefcover remote` and `prefcover loadgen`
// cannot drift apart.
func retryFlags(fs *flag.FlagSet) func() retry.Policy {
	retries := fs.Int("retries", retry.DefaultMaxAttempts-1,
		"how many times to retry transient failures (connection errors, 429/503/5xx) on idempotent calls; 0 disables")
	base := fs.Duration("retry-base", retry.DefaultBaseDelay,
		"initial backoff before the first retry (doubles each retry, jittered, Retry-After honored)")
	return func() retry.Policy {
		return apiclient.NewPolicy(*retries+1, *base, nil)
	}
}

// remoteClient issues API requests with the configured retry discipline.
// With tr set, every call records a span tree — one "call" span per do(),
// one child per attempt — and injects a W3C traceparent header on each
// attempt so server-side spans join the same trace.
type remoteClient struct {
	policy retry.Policy
	tr     *clientTrace
	// httpc is the shared tuned client from internal/apiclient; nil falls
	// back to a default-constructed one on first use.
	httpc *http.Client
}

// newRemoteClient builds the client every remote verb uses: the shared
// apiclient transport plus the parsed retry policy.
func newRemoteClient(policy retry.Policy) *remoteClient {
	return &remoteClient{policy: policy, httpc: apiclient.New(apiclient.Options{})}
}

// do issues one API call and decodes the JSON reply (or surfaces the
// server's JSON error envelope). body is buffered so every retry attempt
// re-sends identical bytes; extra headers (e.g. Idempotency-Key) ride on
// every attempt. Only calls marked idempotent are retried.
func (c *remoteClient) do(ctx context.Context, method, url, contentType string, body []byte, extra http.Header, idempotent bool, out any) error {
	call := c.tr.startCall(method, url)
	if c.httpc == nil {
		c.httpc = apiclient.New(apiclient.Options{})
	}
	// One request ID per logical call, constant across its attempts, so
	// every server-side log line of every retry joins on a single ID.
	reqID := apiclient.NewRequestID()
	policy := c.policy
	var backoff *backoffObserver
	if call != nil {
		// Observe retry decisions so each attempt span can report the
		// backoff that preceded it.
		backoff = &backoffObserver{next: policy.Observer}
		policy.Observer = backoff
	}
	attempt := 0
	op := func(ctx context.Context) error {
		attempt++
		var asp *trace.Span
		if call != nil {
			asp = call.Child(fmt.Sprintf("attempt %d", attempt))
			asp.SetAttr("attempt", attempt)
			if attempt > 1 && backoff != nil {
				asp.SetAttr("backoffSeconds", backoff.lastDelay.Seconds())
			}
			defer asp.End()
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err // malformed request: retrying cannot help
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range extra {
			req.Header[k] = vs
		}
		// The attempt span is the server's parent, so each retry shows up
		// as its own server-side request under the attempt that caused it.
		// Without a client trace, a fresh unsampled traceparent still rides
		// on the attempt so the propagation path is always exercised.
		tp := asp.Context().Traceparent()
		if tp == "" {
			tp = apiclient.NewTraceparent(false)
		}
		apiclient.Decorate(req, reqID, tp)
		resp, err := c.httpc.Do(req)
		if err != nil {
			asp.SetAttr("error", err.Error())
			if idempotent {
				return retry.TransportError(err)
			}
			return err
		}
		defer resp.Body.Close()
		asp.SetAttr("status", resp.StatusCode)
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		if err != nil {
			// The response died mid-body (reset, truncation); for an
			// idempotent call a clean re-read is always safe.
			err = fmt.Errorf("%s %s: reading response: %w", method, url, err)
			asp.SetAttr("error", err.Error())
			if idempotent {
				return retry.TransportError(err)
			}
			return err
		}
		if resp.StatusCode >= 400 {
			err := responseError(method, url, resp, data)
			if idempotent {
				return retry.HTTPStatusError(resp.StatusCode, resp.Header, err)
			}
			return err
		}
		if out == nil || len(bytes.TrimSpace(data)) == 0 {
			return nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("%s %s: decoding response: %w", method, url, err)
		}
		return nil
	}
	err := policy.Do(ctx, op)
	if call != nil {
		call.SetAttr("attempts", attempt)
		if err != nil {
			call.SetAttr("error", err.Error())
		}
		call.End()
	}
	return err
}

// backoffObserver captures the delay the retry loop chose before each
// re-attempt, chaining to any observer the policy already had.
type backoffObserver struct {
	next      retry.Observer
	lastDelay time.Duration
}

func (o *backoffObserver) Attempt() {
	if o.next != nil {
		o.next.Attempt()
	}
}

func (o *backoffObserver) Retry(delay time.Duration, honored bool, err error) {
	o.lastDelay = delay
	if o.next != nil {
		o.next.Retry(delay, honored, err)
	}
}

func (o *backoffObserver) GiveUp(err error) {
	if o.next != nil {
		o.next.GiveUp(err)
	}
}

// responseError renders an error response for the terminal: the server's
// JSON error body when it has one (with its request ID, so the exact
// server-side log lines are quotable), falling back to the X-Request-ID
// header and a body snippet when the body is not the JSON envelope.
func responseError(method, url string, resp *http.Response, data []byte) error {
	reqID := resp.Header.Get("X-Request-ID")
	var apiErr struct {
		Error     string `json:"error"`
		RequestID string `json:"requestId"`
	}
	if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
		if apiErr.RequestID != "" {
			reqID = apiErr.RequestID
		}
		if reqID != "" {
			return fmt.Errorf("%s %s: %s (%s, request %s)", method, url, apiErr.Error, resp.Status, reqID)
		}
		return fmt.Errorf("%s %s: %s (%s)", method, url, apiErr.Error, resp.Status)
	}
	msg := fmt.Sprintf("%s %s: %s", method, url, resp.Status)
	if snippet := strings.TrimSpace(string(data)); snippet != "" {
		const maxSnippet = 200
		if len(snippet) > maxSnippet {
			snippet = snippet[:maxSnippet] + "..."
		}
		msg += ": " + snippet
	}
	if reqID != "" {
		msg += " (request " + reqID + ")"
	}
	return fmt.Errorf("%s", msg)
}

// newIdempotencyKey returns a fresh random key; generated once per logical
// submission and reused across its retries, it is what lets the server
// deduplicate a resent POST /v1/jobs.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "" // no key: the submission is still valid, just not dedupable
	}
	return hex.EncodeToString(b[:])
}

// printJSON writes v to stdout, indented for humans.
func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runRemotePush(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote push", flag.ExitOnError)
	var (
		server = fs.String("server", "http://localhost:8080", "prefcoverd base URL")
		name   = fs.String("name", "", "registry name for the graph (required)")
		in     = fs.String("in", "-", "graph file (default stdin)")
		format = fs.String("format", "json", "wire format of the input: json, binary or tsv")
	)
	policy := retryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("remote push: -name is required")
	}
	var contentType string
	switch *format {
	case "json":
		contentType = "application/json"
	case "binary":
		contentType = "application/octet-stream"
	case "tsv":
		contentType = "text/tab-separated-values"
	default:
		return fmt.Errorf("remote push: unknown -format %q (want json, binary or tsv)", *format)
	}
	f, closeIn, err := openIn(*in)
	if err != nil {
		return err
	}
	defer closeIn()
	// Buffer the graph so a retried PUT re-sends identical bytes (stdin
	// cannot be re-read).
	data, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("remote push: reading %s: %w", *in, err)
	}
	c := newRemoteClient(policy())
	var info map[string]any
	url := strings.TrimRight(*server, "/") + "/v1/graphs/" + *name
	// PUT replaces the full content, so it is idempotent and safe to retry.
	if err := c.do(ctx, http.MethodPut, url, contentType, data, nil, true, &info); err != nil {
		return err
	}
	return printJSON(info)
}

// solveQuery renders the shared solver parameters as a query string.
func solveQuery(variant string, k int, threshold float64, lazy bool, workers int, pins []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "?variant=%s", variant)
	if k > 0 {
		fmt.Fprintf(&sb, "&k=%d", k)
	}
	if threshold > 0 {
		fmt.Fprintf(&sb, "&threshold=%g", threshold)
	}
	if !lazy {
		sb.WriteString("&lazy=0")
	}
	if workers > 1 {
		fmt.Fprintf(&sb, "&workers=%d", workers)
	}
	for _, p := range pins {
		fmt.Fprintf(&sb, "&pin=%s", p)
	}
	return sb.String()
}

// splitPins turns the comma-separated -pins flag into labels.
func splitPins(flagVal string) []string {
	if flagVal == "" {
		return nil
	}
	parts := strings.Split(flagVal, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func runRemoteSolve(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote solve", flag.ExitOnError)
	var (
		server    = fs.String("server", "http://localhost:8080", "prefcoverd base URL")
		graphRef  = fs.String("graph", "", "registered graph name (required)")
		variant   = fs.String("variant", "independent", "variant: independent or normalized")
		k         = fs.Int("k", 0, "retained-set budget (budget mode)")
		threshold = fs.Float64("threshold", 0, "target cover in (0,1] (minimization mode)")
		lazy      = fs.Bool("lazy", true, "use lazy (CELF) evaluation")
		workers   = fs.Int("workers", 1, "parallel scan workers")
		pins      = fs.String("pins", "", "comma-separated must-stock labels, retained before the greedy fill")
		traceOut  = fs.String("trace", "", "write a merged client+server Chrome trace-event file here")
	)
	policy := retryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphRef == "" {
		return fmt.Errorf("remote solve: -graph is required")
	}
	body, _ := json.Marshal(map[string]string{"graph_ref": *graphRef})
	url := strings.TrimRight(*server, "/") + "/v1/solve" +
		solveQuery(*variant, *k, *threshold, *lazy, *workers, splitPins(*pins))
	c := newRemoteClient(policy())
	if *traceOut != "" {
		c.tr = newClientTrace(*traceOut, "solve", *server)
	}
	var out map[string]any
	// A reference solve is a pure read (POST in verb only) — retry freely.
	err := c.do(ctx, http.MethodPost, url, "application/json", body, nil, true, &out)
	if terr := c.tr.finish(ctx, c.policy); err == nil {
		err = terr
	}
	if err != nil {
		return err
	}
	return printJSON(out)
}

func runRemoteJob(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("remote job", flag.ExitOnError)
	var (
		server    = fs.String("server", "http://localhost:8080", "prefcoverd base URL")
		graphRef  = fs.String("graph", "", "registered graph name (submits a new job)")
		variant   = fs.String("variant", "independent", "variant: independent or normalized")
		k         = fs.Int("k", 0, "retained-set budget (budget mode)")
		threshold = fs.Float64("threshold", 0, "target cover in (0,1] (minimization mode)")
		lazy      = fs.Bool("lazy", true, "use lazy (CELF) evaluation")
		workers   = fs.Int("workers", 1, "parallel scan workers")
		pins      = fs.String("pins", "", "comma-separated must-stock labels")
		wait      = fs.Bool("wait", false, "poll the submitted job until it finishes and print the final state")
		interval  = fs.Duration("interval", 500*time.Millisecond, "polling interval for -wait")
		status    = fs.String("status", "", "print the state of this job id and exit")
		cancel    = fs.String("cancel", "", "cancel this job id and exit")
		traceOut  = fs.String("trace", "", "write a merged client+server Chrome trace-event file here (submission path)")
	)
	policy := retryFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*server, "/")
	c := newRemoteClient(policy())
	switch {
	case *status != "":
		var out map[string]any
		if err := c.do(ctx, http.MethodGet, base+"/v1/jobs/"+*status, "", nil, nil, true, &out); err != nil {
			return err
		}
		return printJSON(out)
	case *cancel != "":
		var out map[string]any
		// Not retried: a lost DELETE response is indistinguishable from a
		// successful cancel, and re-sending would 404 on its own success.
		if err := c.do(ctx, http.MethodDelete, base+"/v1/jobs/"+*cancel, "", nil, nil, false, &out); err != nil {
			return err
		}
		return printJSON(out)
	case *graphRef == "":
		return fmt.Errorf("remote job: need -graph (submit), -status ID or -cancel ID")
	}
	if *traceOut != "" {
		c.tr = newClientTrace(*traceOut, "job", *server)
	}

	payload := map[string]any{"graph_ref": *graphRef, "variant": *variant}
	if *k > 0 {
		payload["k"] = *k
	}
	if *threshold > 0 {
		payload["threshold"] = *threshold
	}
	if !*lazy {
		payload["lazy"] = false
	}
	if *workers > 1 {
		payload["workers"] = *workers
	}
	if ps := splitPins(*pins); len(ps) > 0 {
		payload["pins"] = ps
	}
	body, _ := json.Marshal(payload)
	// One key per logical submission, constant across its retries: the
	// server deduplicates, so POST /v1/jobs becomes effectively idempotent.
	var extra http.Header
	if key := newIdempotencyKey(); key != "" {
		extra = http.Header{"Idempotency-Key": {key}}
	}
	final, err := submitAndWait(ctx, c, base, body, extra, *wait, *interval)
	// The merged trace is written whether the job succeeded or not; a
	// failed round-trip is exactly when the trace is most interesting.
	if terr := c.tr.finish(ctx, c.policy); err == nil {
		err = terr
	}
	if err != nil {
		return err
	}
	return printJSON(final)
}

// submitAndWait posts the job and (with wait) polls it to a terminal
// state, returning the last job payload seen.
func submitAndWait(ctx context.Context, c *remoteClient, base string, body []byte, extra http.Header, wait bool, interval time.Duration) (map[string]any, error) {
	var submitted map[string]any
	if err := c.do(ctx, http.MethodPost, base+"/v1/jobs", "application/json", body, extra, true, &submitted); err != nil {
		return nil, err
	}
	id, _ := submitted["id"].(string)
	if !wait || id == "" {
		return submitted, nil
	}
	for {
		var snap map[string]any
		if err := c.do(ctx, http.MethodGet, base+"/v1/jobs/"+id, "", nil, nil, true, &snap); err != nil {
			return nil, err
		}
		switch snap["state"] {
		case "done", "failed", "canceled":
			return snap, nil
		}
		if state, ok := snap["state"].(string); ok {
			if prog, ok := snap["progress"].(map[string]any); ok {
				fmt.Fprintf(os.Stderr, "job %s: %s step=%v cover=%v\n", id, state, prog["step"], prog["cover"])
			}
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}
