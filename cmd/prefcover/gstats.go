package main

import (
	"context"
	"flag"
	"fmt"

	"prefcover"
)

func runGStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gstats", flag.ExitOnError)
	var (
		in      = fs.String("in", "-", "input graph (default stdin)")
		variant = fs.String("variant", "", "also validate against a variant (independent/normalized)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	s := prefcover.ComputeStats(g)
	fmt.Printf("items:        %d\n", s.Nodes)
	fmt.Printf("edges:        %d (avg degree %.2f, max in %d, max out %d)\n",
		s.Edges, s.AvgOutDegree, s.MaxInDegree, s.MaxOutDegree)
	fmt.Printf("total weight: %.6f (max item %.6f, gini %.3f)\n", s.TotalWeight, s.MaxNodeW, s.GiniNodeWeight)
	fmt.Printf("isolated:     %d items\n", s.Isolated)
	fmt.Printf("edge weights: mean %.4f, max out-sum %.4f\n", s.MeanEdgeW, s.MaxOutWeightSum)
	zero, buckets := g.DegreeHistogram()
	fmt.Printf("in-degree histogram: 0:%d", zero)
	for i, c := range buckets {
		fmt.Printf("  %d-%d:%d", 1<<i, 1<<(i+1)-1, c)
	}
	fmt.Println()
	if *variant != "" {
		v, err := prefcover.ParseVariant(*variant)
		if err != nil {
			return err
		}
		err = g.Validate(prefcover.ValidateOptions{Variant: v, RequireSimplex: true})
		if err != nil {
			return fmt.Errorf("validation (%s): %w", v, err)
		}
		fmt.Printf("valid %s preference graph\n", v)
	}
	return nil
}
