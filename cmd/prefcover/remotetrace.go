package main

// Client-side distributed tracing for `prefcover remote`. With -trace
// out.json, the CLI originates a W3C trace context, records its own span
// tree (one span per API call, one child per retry attempt), injects
// traceparent on every attempt, and — after the command completes —
// fetches the server-side spans for the same trace ID from
// /debug/traces?trace=<id>&epoch=unix and merges both processes into one
// Chrome trace-event file: client spans on pid 1, server spans on pid 2,
// all on one timeline.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"strings"
	"time"

	"prefcover/internal/retry"
	"prefcover/internal/trace"
)

// clientTrace owns the CLI-side flight recorder for one remote command.
type clientTrace struct {
	tracer *trace.Tracer
	sc     trace.SpanContext
	root   *trace.Span
	out    string // output file path
	server string // prefcoverd base URL, for fetching the server half
}

// newClientTrace originates a trace for one remote verb. A nil receiver
// (no -trace flag) disables all of this at zero cost.
func newClientTrace(out, verb, server string) *clientTrace {
	tracer := trace.New(trace.DefaultCapacity)
	sc := trace.NewSpanContext()
	root := tracer.RootContext("remote "+verb, sc)
	return &clientTrace{tracer: tracer, sc: sc, root: root, out: out, server: strings.TrimRight(server, "/")}
}

// startCall opens the span covering one API call (all its attempts).
func (ct *clientTrace) startCall(method, rawURL string) *trace.Span {
	if ct == nil {
		return nil
	}
	path := rawURL
	if u, err := url.Parse(rawURL); err == nil && u.Path != "" {
		path = u.Path
	}
	return ct.root.Child("call " + method + " " + path)
}

// finish ends the root span, merges in the server-side spans, and writes
// the combined Chrome trace-event file. Fetch failures degrade to a
// client-only trace with a warning — the command itself already succeeded
// or failed on its own terms.
func (ct *clientTrace) finish(ctx context.Context, policy retry.Policy) error {
	if ct == nil {
		return nil
	}
	ct.root.End()
	// time.Unix(0, 0) switches both sides to absolute Unix-epoch
	// microseconds, making the two processes' timestamps directly
	// comparable (same host; NTP-level skew across hosts).
	events := trace.ChromeEvents(ct.tracer.Snapshot(), time.Unix(0, 0))
	serverEvents, err := ct.fetchServerEvents(ctx, policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: could not fetch server-side spans (%v); writing client-only trace\n", err)
	}
	for i := range serverEvents {
		serverEvents[i].PID = 2
	}
	events = append(events, serverEvents...)
	// Rebase the merged set so the file starts at t=0 like every other
	// trace dump this repo produces.
	min := events[0].TS
	for _, ev := range events {
		if ev.TS < min {
			min = ev.TS
		}
	}
	for i := range events {
		events[i].TS -= min
	}
	f, err := os.Create(ct.out)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := trace.WriteChromeEvents(f, events); err != nil {
		return fmt.Errorf("trace: writing %s: %w", ct.out, err)
	}
	fmt.Fprintf(os.Stderr, "trace %s: wrote %d events (%d server-side) to %s\n",
		ct.sc.TraceID, len(events), len(serverEvents), ct.out)
	return nil
}

// fetchServerEvents pulls the server's spans for this trace ID. The
// server records a request's root span only after writing its response,
// so the very call that finished the command may not be in the ring yet —
// poll briefly until the event count is non-zero and stable.
func (ct *clientTrace) fetchServerEvents(ctx context.Context, policy retry.Policy) ([]trace.ChromeEvent, error) {
	// A bare client: the fetch itself must not add spans to the trace.
	c := &remoteClient{policy: policy}
	u := ct.server + "/debug/traces?trace=" + url.QueryEscape(ct.sc.TraceID) + "&epoch=unix"
	var (
		events []trace.ChromeEvent
		prev   = -1
	)
	for i := 0; i < 10; i++ {
		var got json.RawMessage
		if err := c.do(ctx, "GET", u, "", nil, nil, true, &got); err != nil {
			return nil, err
		}
		var parsed []trace.ChromeEvent
		if err := json.Unmarshal(got, &parsed); err != nil {
			return nil, fmt.Errorf("decoding %s: %w", u, err)
		}
		if len(parsed) > 0 && len(parsed) == prev {
			return parsed, nil
		}
		prev = len(parsed)
		events = parsed
		select {
		case <-ctx.Done():
			return events, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
	return events, nil
}
