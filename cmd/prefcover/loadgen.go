package main

// The loadgen subcommand drives a prefcoverd with the open-loop load
// generator (internal/loadgen) and records the outcome in
// BENCH_serving.json — the serving-side counterpart of cmd/benchjson.
//
//	prefcover loadgen -preset yc -rps 200 -duration 5s -seed 1
//	prefcover loadgen -server http://host:8080 -rps 500 -duration 30s
//	prefcover loadgen -capacity -start-rps 25 -slo-p99 250ms
//	prefcover loadgen -print-schedule -seed 1 -rps 200 -duration 5s
//
// With no -server, a full in-process prefcoverd (registry, cache, async
// jobs, fault injector) is booted on a loopback port and torn down after
// the run, so a capacity number needs nothing but the binary. With
// -fault-spec against a remote server, the spec is installed through
// /debug/faults (the server must run with -fault-control).

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"prefcover/internal/apiclient"
	"prefcover/internal/cluster"
	"prefcover/internal/faults"
	"prefcover/internal/graph"
	"prefcover/internal/jobs"
	"prefcover/internal/loadgen"
	"prefcover/internal/profilez"
	"prefcover/internal/replay"
	"prefcover/internal/server"
	"prefcover/internal/slo"
	"prefcover/internal/synth"
)

func runLoadgen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	var (
		serverURL = fs.String("server", "", "target prefcoverd base URL; empty boots an in-process daemon on loopback")
		preset    = fs.String("preset", "yc", "workload graph preset: pe, pf, pm or yc (case-insensitive)")
		scale     = fs.Float64("scale", 0.002, "preset scale factor in (0,1] for the workload graph")
		seed      = fs.Int64("seed", 1, "master seed: request schedule, workload graph and replay all derive from it")
		rps       = fs.Float64("rps", 200, "offered request rate (open-loop Poisson arrivals)")
		duration  = fs.Duration("duration", 5*time.Second, "how long to generate load")
		mixText   = fs.String("mix", "", `traffic mix, e.g. "solve=0.65,get=0.15,put=0.05,job=0.15" (empty = default)`)
		kMax      = fs.Int("kmax", loadgen.DefaultKMax, "solve/job budgets are drawn uniformly from [1,kmax]")
		variant   = fs.String("variant", "independent", "solve variant: independent or normalized")

		retries   = fs.Int("retries", 0, "retries per request on transient failures; 0 keeps the open-loop honest")
		retryBase = fs.Duration("retry-base", 25*time.Millisecond, "initial backoff before the first retry")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request deadline, all attempts included")
		pollEvery = fs.Duration("poll-interval", 50*time.Millisecond, "async job poll spacing")

		faultSpec = fs.String("fault-spec", "", "fault-injector spec for latency-under-chaos runs (see internal/faults); installed in-process or via /debug/faults")

		capacity  = fs.Bool("capacity", false, "capacity mode: step -start-rps by -rps-factor until the SLO or error budget breaks, report the knee")
		startRPS  = fs.Float64("start-rps", 25, "capacity mode: first step's rate")
		maxRPS    = fs.Float64("max-rps", 0, "capacity mode: stop stepping past this rate (0 = 100x start)")
		factor    = fs.Float64("rps-factor", 2, "capacity mode: rate multiplier between steps")
		stepDur   = fs.Duration("step-duration", 3*time.Second, "capacity mode: how long each rate is held")
		sloP99    = fs.Duration("slo-p99", 250*time.Millisecond, "capacity mode: p99 objective (worst endpoint)")
		errBudget = fs.Float64("error-budget", 0.01, "capacity mode: tolerated (errors+timeouts)/sent ratio")

		replayN = fs.Int("replay", 2000, "Monte Carlo requests validating the solved cover against the graph; 0 disables")

		sloSpecText = fs.String("slo-spec", "", `grade the run against these objectives over the logical endpoints and record the verdicts, e.g. "avail:solve:99.9,p99:solve:0.25" (single runs only)`)

		profileOut    = fs.String("profile", "", "arm a server-side CPU capture via /debug/profilez spanning the run and save the gzipped pprof protobuf to this file (single runs only, not -capacity)")
		out           = fs.String("out", "BENCH_serving.json", "append the run to this benchmark file; empty skips recording")
		printSchedule = fs.Bool("print-schedule", false, "print the deterministic request schedule and exit (no server needed)")
		quiet         = fs.Bool("quiet", false, "suppress progress output on stderr")

		maxConcurrent = fs.Int("max-concurrent", 0, "in-process daemon: cap concurrently executing /v1/* requests (0 = unlimited)")
		jobWorkers    = fs.Int("job-workers", 2, "in-process daemon: async job worker pool width")

		clusterK = fs.Int("cluster", 0, "boot this many in-process nodes behind a routing gateway and load the gateway instead of a single daemon (0 = single node; incompatible with -server)")
		clusterR = fs.Int("cluster-replicas", 0, "replication factor for the -cluster gateway (0 = 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := loadgen.ParseMix(*mixText)
	if err != nil {
		return err
	}
	sloSpec, err := slo.ParseSpec(*sloSpecText)
	if err != nil {
		return err
	}
	if sloSpec.Enabled() && *capacity {
		// Capacity mode already carries its own -slo-p99/-error-budget knee
		// criteria; per-run verdicts only apply to single runs.
		return fmt.Errorf("-slo-spec only applies to single runs, not -capacity")
	}
	if *profileOut != "" && *capacity {
		// A capacity search holds many rate steps of unknown total length;
		// one fixed CPU window cannot span it meaningfully.
		return fmt.Errorf("-profile only applies to single runs, not -capacity")
	}
	if *profileOut != "" && *printSchedule {
		return fmt.Errorf("-profile needs a live run, not -print-schedule")
	}
	if *clusterK > 0 && *serverURL != "" {
		return fmt.Errorf("-cluster boots its own gateway; it cannot be combined with -server")
	}
	if *clusterK > 0 && *profileOut != "" {
		return fmt.Errorf("-profile captures through a node's /debug/profilez; the gateway does not expose one")
	}
	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		}
	}

	if *printSchedule {
		sched, err := loadgen.BuildSchedule(loadgen.ScheduleSpec{
			Seed: *seed, RPS: *rps, Duration: *duration, Mix: mix, KMax: *kMax,
		})
		if err != nil {
			return err
		}
		return sched.Encode(os.Stdout)
	}

	// The workload graph: deterministic from (preset, scale, seed), the
	// same synthesis path the paper experiments use.
	p, err := synth.ParsePreset(*preset)
	if err != nil {
		return err
	}
	gspec, err := synth.PresetGraphSpec(p, *scale, *seed)
	if err != nil {
		return err
	}
	g, err := synth.GenerateGraph(gspec)
	if err != nil {
		return err
	}
	var graphBuf bytes.Buffer
	if err := graph.WriteJSON(&graphBuf, g); err != nil {
		return err
	}
	progress("workload graph: preset %s scale %g -> %d nodes", p, *scale, g.NumNodes())

	budgetCeil := *kMax
	if budgetCeil > g.NumNodes() {
		budgetCeil = g.NumNodes()
	}

	client := apiclient.New(apiclient.Options{Timeout: *timeout})
	base := strings.TrimRight(*serverURL, "/")
	var inproc *inprocDaemon
	var inprocCl *inprocCluster
	switch {
	case base != "":
	case *clusterK > 0:
		inprocCl, err = startInprocCluster(*clusterK, *clusterR, *maxConcurrent, *jobWorkers)
		if err != nil {
			return err
		}
		defer inprocCl.close()
		base = inprocCl.baseURL
		progress("in-process cluster %s, gateway on %s (max-concurrent=%d, job-workers=%d)",
			inprocCl.topology, base, *maxConcurrent, *jobWorkers)
	default:
		inproc, err = startInprocDaemon(*maxConcurrent, *jobWorkers)
		if err != nil {
			return err
		}
		defer inproc.close()
		base = inproc.baseURL
		progress("in-process prefcoverd on %s (max-concurrent=%d, job-workers=%d)", base, *maxConcurrent, *jobWorkers)
	}

	target := loadgen.Target{
		BaseURL:   base,
		MainGraph: "loadgen-main",
		PutGraph:  "loadgen-put",
		GraphJSON: graphBuf.Bytes(),
		Variant:   *variant,
	}
	if err := loadgen.SetupGraphs(ctx, client, target); err != nil {
		return err
	}

	// Arm the injector after setup so the uploads don't consume fault
	// draws the report will be reconciled against.
	var injector *faults.Injector
	if *faultSpec != "" {
		spec, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		if inproc != nil {
			injector = faults.New(spec)
			inproc.srv.SetFaults(injector)
		} else if inprocCl != nil {
			// Mirror the chaos suites: one faulted node, the gateway's
			// failover absorbing its failures.
			injector = faults.New(spec)
			inprocCl.nodes[0].srv.SetFaults(injector)
		} else if err := installRemoteFaults(ctx, client, base, *faultSpec); err != nil {
			return fmt.Errorf("installing -fault-spec on %s: %w (is the server running with -fault-control?)", base, err)
		}
	}

	opts := loadgen.RunOptions{
		Client:       client,
		Timeout:      *timeout,
		MaxAttempts:  *retries + 1,
		RetryBase:    *retryBase,
		PollInterval: *pollEvery,
		FaultSpec:    *faultSpec,
	}

	entry := loadgen.BenchEntry{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GitSHA:    loadgenGitSHA(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	if *capacity {
		result, err := loadgen.RunCapacity(ctx, loadgen.CapacitySpec{
			StartRPS:     *startRPS,
			MaxRPS:       *maxRPS,
			Factor:       *factor,
			StepDuration: *stepDur,
			SLOP99:       *sloP99,
			ErrorBudget:  *errBudget,
			Mix:          mix,
			KMax:         budgetCeil,
			Seed:         *seed,
		}, target, opts, func(s loadgen.CapacityStep) {
			progress("capacity step %g rps: p99=%.1fms errors=%.3f passed=%v %s",
				s.RPS, s.P99*1000, s.ErrorRatio, s.Passed, s.Violation)
		})
		if err != nil {
			return err
		}
		progress("knee: %g rps (saturated=%v)", result.KneeRPS, result.Saturated)
		entry.Kind = loadgen.BenchKindCapacity
		entry.Capacity = result
		if err := recordBench(*out, entry, progress); err != nil {
			return err
		}
		return printJSON(result)
	}

	sched, err := loadgen.BuildSchedule(loadgen.ScheduleSpec{
		Seed: *seed, RPS: *rps, Duration: *duration, Mix: mix, KMax: budgetCeil,
	})
	if err != nil {
		return err
	}
	progress("schedule: %d requests over %s at %g rps (seed %d, mix %s)",
		len(sched.Requests), *duration, *rps, *seed, mix)
	var profC <-chan profileCapture
	if *profileOut != "" {
		seconds := int(*duration/time.Second) + 1
		if seconds > 120 {
			seconds = 120 // the /debug/profilez on-demand cap
		}
		profC = armProfileCapture(ctx, base, *profileOut, seconds)
		progress("armed %ds server-side CPU capture via /debug/profilez -> %s", seconds, *profileOut)
	}
	report, err := loadgen.Run(ctx, sched, target, opts)
	if err != nil {
		return err
	}
	if profC != nil {
		prof := <-profC
		if prof.err != nil {
			return fmt.Errorf("-profile capture: %w", prof.err)
		}
		entry.Profile = prof.artifact
		progress("profile: %s (%d bytes, %d samples, capture %s)",
			prof.artifact.Path, prof.artifact.Bytes, prof.artifact.Samples, prof.artifact.CaptureID)
	}
	report.Preset = string(p)
	if inprocCl != nil {
		report.Cluster = inprocCl.topology
	}
	if err := report.Validate(); err != nil {
		return fmt.Errorf("report failed its own invariants (collector bug): %w", err)
	}

	// Server-side injector tally, when reachable: in-process directly,
	// remote through /debug/faults.
	if report.Faults != nil {
		if injector != nil {
			report.Faults.ServerCounts = kindCounts(injector.Counts())
		} else if *faultSpec != "" {
			if counts, err := fetchRemoteFaultCounts(ctx, client, base); err == nil {
				report.Faults.ServerCounts = counts
			}
		}
	}

	// Tie the serving run back to the paper's semantics: replay the solved
	// assortment against the same graph and compare with the analytic
	// cover the server reported.
	if *replayN > 0 {
		if rs, err := replayValidate(ctx, client, g, target, budgetCeil, *replayN, *seed); err != nil {
			progress("replay validation skipped: %v", err)
		} else {
			report.Replay = rs
			progress("replay: simulated %.4f (stderr %.4f) vs predicted %.4f",
				rs.Rate, rs.StdErr, rs.Predicted)
		}
	}

	if sloSpec.Enabled() {
		report.SLOSpec = sloSpec.String()
		report.SLO = loadgen.EvaluateSLO(sloSpec, report)
		for _, v := range report.SLO {
			progress("slo %s", v)
		}
	}

	entry.Kind = loadgen.BenchKindRun
	entry.Report = report
	if err := recordBench(*out, entry, progress); err != nil {
		return err
	}
	return printJSON(report)
}

// inprocDaemon is the loopback prefcoverd the CLI boots when no -server is
// given.
type inprocDaemon struct {
	srv     *server.Server
	httpSrv *http.Server
	ln      net.Listener
	baseURL string
}

func startInprocDaemon(maxConcurrent, jobWorkers int) (*inprocDaemon, error) {
	srv, err := server.NewWithConfig(server.Config{
		Limits: server.Limits{MaxConcurrent: maxConcurrent},
		Jobs:   jobs.Options{Workers: jobWorkers, QueueDepth: 4096},
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &inprocDaemon{
		srv:     srv,
		httpSrv: hs,
		ln:      ln,
		baseURL: "http://" + ln.Addr().String(),
	}, nil
}

func (d *inprocDaemon) close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d.httpSrv.Shutdown(ctx)
	d.srv.Close()
}

// inprocCluster is the -cluster target: K loopback prefcoverd nodes
// behind a routing gateway, all in this process, so a cluster serving
// number needs nothing but the binary.
type inprocCluster struct {
	nodes    []*inprocDaemon
	gw       *cluster.Gateway
	gwSrv    *http.Server
	baseURL  string
	topology string // e.g. "gateway+3nodes,r=2", recorded in the report
}

func startInprocCluster(k, replicas, maxConcurrent, jobWorkers int) (*inprocCluster, error) {
	c := &inprocCluster{}
	fail := func(err error) (*inprocCluster, error) { c.close(); return nil, err }
	urls := make([]string, 0, k)
	for i := 0; i < k; i++ {
		node, err := startInprocDaemon(maxConcurrent, jobWorkers)
		if err != nil {
			return fail(err)
		}
		c.nodes = append(c.nodes, node)
		urls = append(urls, node.baseURL)
	}
	gw, err := cluster.New(cluster.Options{Nodes: urls, Replicas: replicas})
	if err != nil {
		return fail(err)
	}
	c.gw = gw
	if replicas <= 0 {
		replicas = cluster.DefaultReplicas
	}
	c.topology = fmt.Sprintf("gateway+%dnodes,r=%d", k, replicas)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(err)
	}
	c.gwSrv = &http.Server{Handler: gw.Handler()}
	go c.gwSrv.Serve(ln)
	c.baseURL = "http://" + ln.Addr().String()
	return c, nil
}

func (c *inprocCluster) close() {
	if c.gwSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		c.gwSrv.Shutdown(ctx)
		cancel()
	}
	if c.gw != nil {
		c.gw.Close()
	}
	for _, n := range c.nodes {
		n.close()
	}
}

// profileCapture is the result of the server-side CPU capture a -profile
// run arms alongside its traffic.
type profileCapture struct {
	artifact *loadgen.ProfileArtifact
	err      error
}

// armProfileCapture starts a /debug/profilez CPU capture spanning the run
// window in the background: the POST blocks server-side for the whole
// window, so it runs concurrently with the load and the result — the
// downloaded profile written to path, decoded for its sample count — is
// delivered on the returned channel once both have finished.
func armProfileCapture(ctx context.Context, base, path string, seconds int) <-chan profileCapture {
	ch := make(chan profileCapture, 1)
	go func() {
		ch <- captureServerProfile(ctx, base, path, seconds)
	}()
	return ch
}

func captureServerProfile(ctx context.Context, base, path string, seconds int) profileCapture {
	fail := func(err error) profileCapture { return profileCapture{err: err} }
	// The capture POST intentionally blocks for the full window; use a
	// client without the per-request deadline the load traffic runs under.
	client := &http.Client{}
	url := fmt.Sprintf("%s/debug/profilez?capture=cpu&seconds=%d", base, seconds)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return fail(err)
	}
	apiclient.Decorate(req, apiclient.NewRequestID(), apiclient.NewTraceparent(false))
	resp, err := client.Do(req)
	if err != nil {
		return fail(err)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body)))
	}
	var entry struct {
		ID      string `json:"id"`
		Seconds int    `json:"seconds"`
	}
	if err := json.Unmarshal(body, &entry); err != nil || entry.ID == "" {
		return fail(fmt.Errorf("capture reply not a profilez entry: %s", body))
	}

	dreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/profilez?download="+entry.ID, nil)
	if err != nil {
		return fail(err)
	}
	dresp, err := client.Do(dreq)
	if err != nil {
		return fail(err)
	}
	data, err := io.ReadAll(io.LimitReader(dresp.Body, 256<<20))
	dresp.Body.Close()
	if err != nil {
		return fail(err)
	}
	if dresp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("downloading capture %s: status %d", entry.ID, dresp.StatusCode))
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fail(err)
	}
	info, err := profilez.ReadProfile(bytes.NewReader(data))
	if err != nil {
		return fail(fmt.Errorf("decoding capture %s: %w", entry.ID, err))
	}
	return profileCapture{artifact: &loadgen.ProfileArtifact{
		Path:      path,
		CaptureID: entry.ID,
		Seconds:   seconds,
		Bytes:     int64(len(data)),
		Samples:   info.Samples,
	}}
}

// installRemoteFaults PUTs the spec to /debug/faults, which also resets
// the injector's counts so the run starts a fresh experiment.
func installRemoteFaults(ctx context.Context, client *http.Client, base, spec string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/debug/faults", strings.NewReader(spec))
	if err != nil {
		return err
	}
	apiclient.Decorate(req, apiclient.NewRequestID(), apiclient.NewTraceparent(false))
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode >= 400 {
		return fmt.Errorf("PUT /debug/faults: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// fetchRemoteFaultCounts reads the injector tally from /debug/faults.
func fetchRemoteFaultCounts(ctx context.Context, client *http.Client, base string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/faults", nil)
	if err != nil {
		return nil, err
	}
	apiclient.Decorate(req, apiclient.NewRequestID(), apiclient.NewTraceparent(false))
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("GET /debug/faults: status %d", resp.StatusCode)
	}
	var state struct {
		Counts map[string]int64 `json:"counts"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&state); err != nil {
		return nil, err
	}
	return state.Counts, nil
}

func kindCounts(in map[faults.Kind]int64) map[string]int64 {
	out := make(map[string]int64, len(in))
	for k, v := range in {
		out[string(k)] = v
	}
	return out
}

// replayValidate solves once at the budget ceiling through the server,
// then Monte Carlo-replays the returned assortment against the local copy
// of the graph.
func replayValidate(ctx context.Context, client *http.Client, g *graph.Graph, target loadgen.Target, k, requests int, seed int64) (*loadgen.ReplayStats, error) {
	body, _ := json.Marshal(map[string]string{"graph_ref": target.MainGraph})
	url := fmt.Sprintf("%s/v1/solve?variant=%s&k=%d", strings.TrimRight(target.BaseURL, "/"), target.Variant, k)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	apiclient.Decorate(req, apiclient.NewRequestID(), apiclient.NewTraceparent(false))
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("solve for replay: status %d", resp.StatusCode)
	}
	var sol struct {
		Cover float64  `json:"cover"`
		Order []string `json:"order"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(&sol); err != nil {
		return nil, err
	}
	set := make([]int32, 0, len(sol.Order))
	for _, label := range sol.Order {
		v, ok := g.Lookup(label)
		if !ok {
			// Unlabeled graphs round-trip as synthesized "#<index>" labels.
			var idx int32
			if _, err := fmt.Sscanf(label, "#%d", &idx); err != nil || idx < 0 || int(idx) >= g.NumNodes() {
				return nil, fmt.Errorf("solved label %q not in local graph", label)
			}
			v = idx
		}
		set = append(set, v)
	}
	variant := graph.Independent
	if target.Variant == "normalized" {
		variant = graph.Normalized
	}
	est, err := replay.RunSet(g, set, replay.Spec{Variant: variant, Requests: requests, Seed: seed + 1}, sol.Cover)
	if err != nil {
		return nil, err
	}
	return &loadgen.ReplayStats{
		Requests:  est.Requests,
		Rate:      est.Rate,
		StdErr:    est.StdErr,
		Predicted: est.Predicted,
	}, nil
}

func recordBench(path string, entry loadgen.BenchEntry, progress func(string, ...any)) error {
	if path == "" {
		return nil
	}
	if err := loadgen.AppendBench(path, entry); err != nil {
		return err
	}
	progress("recorded %s entry in %s (git %s)", entry.Kind, path, entry.GitSHA)
	return nil
}

// loadgenGitSHA mirrors cmd/benchjson's revision stamp: git rev-parse in
// a checkout, the linker's VCS setting as fallback, "unknown" otherwise.
func loadgenGitSHA() string {
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}
