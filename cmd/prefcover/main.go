// Command prefcover is the end-to-end inventory-reduction pipeline of the
// paper's Figure 2: it generates or ingests clickstream data, adapts it
// into a preference graph, solves the Preference Cover problem, and
// reports the retained inventory.
//
// Subcommands:
//
//	gen    generate a synthetic clickstream (presets PE/PF/PM/YC)
//	stats  summarize a clickstream
//	adapt  build a preference graph from a clickstream
//	solve  select the retained inventory from a graph (budget or threshold)
//	eval   score an explicit retained set against a graph
//
// Every subcommand reads stdin and writes stdout unless -in/-out are
// given, so stages compose with pipes:
//
//	prefcover gen -preset YC -scale 0.01 | prefcover adapt -variant i |
//	    prefcover solve -variant i -k 500
package main

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"prefcover/internal/version"
)

// command describes one subcommand. Every subcommand receives the
// process context, canceled on SIGINT/SIGTERM so long adapts and solves
// stop promptly instead of needing a kill -9.
type command struct {
	name, summary string
	run           func(ctx context.Context, args []string) error
}

var commands = []command{
	{"gen", "generate a synthetic clickstream", runGen},
	{"import", "convert a YooChoose (RecSys 2015) dataset to a clickstream", runImport},
	{"stats", "summarize a clickstream", runStats},
	{"adapt", "build a preference graph from a clickstream", runAdapt},
	{"gstats", "summarize a preference graph", runGStats},
	{"solve", "select the retained inventory from a graph", runSolve},
	{"eval", "score an explicit retained set", runEval},
	{"simulate", "Monte Carlo-validate a retained set against the graph", runSimulate},
	{"remote", "talk to a prefcoverd: push graphs, solve by reference, run async jobs", runRemote},
	{"loadgen", "load-test a prefcoverd: open-loop traffic, capacity knee, BENCH_serving.json", runLoadgen},
	{"version", "print the build identity (module version, VCS revision, Go)", runVersion},
}

func runVersion(ctx context.Context, args []string) error {
	fmt.Println(version.Get())
	return nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	name := os.Args[1]
	if name == "-version" || name == "--version" {
		name = "version"
	}
	for _, c := range commands {
		if c.name == name {
			if err := c.run(ctx, os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "prefcover %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "prefcover: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: prefcover <command> [flags]")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(os.Stderr, "\nrun 'prefcover <command> -h' for flags")
}

// maybeGzip transparently decompresses inputs whose path ends in ".gz"
// (the YooChoose distribution ships gzipped).
func maybeGzip(r io.Reader, path string) (io.Reader, error) {
	if !strings.HasSuffix(path, ".gz") {
		return r, nil
	}
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("opening gzip %s: %w", path, err)
	}
	return gz, nil
}

// openIn returns the input stream ("-"/empty means stdin).
func openIn(path string) (*os.File, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// createOut returns the output stream ("-"/empty means stdout).
func createOut(path string) (*os.File, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
