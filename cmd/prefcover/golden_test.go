package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// figure1TSV is the paper's Figure 1 graph in the CLI's TSV format.
const figure1TSV = `node	A	0.33
node	B	0.22
node	C	0.22
node	D	0.06
node	E	0.17
edge	A	B	0.6666666666666666
edge	A	C	0.3
edge	B	C	0.8
edge	C	B	1
edge	D	C	0.5
edge	E	D	0.9
`

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	if ferr != nil {
		t.Fatalf("command failed: %v", ferr)
	}
	return sb.String()
}

// TestSolveGoldenFigure1 pins the operator-facing report for the paper's
// worked example: B then D, 87.30% cover, the per-item coverages of
// Figure 2.
func TestSolveGoldenFigure1(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "fig1.tsv")
	if err := os.WriteFile(graphPath, []byte(figure1TSV), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "2"})
	})
	for _, want := range []string{
		"cover: 87.30%",
		"1  B",
		"2  D",
		"A     0.3300  66.7%",
		"E     0.1700  90.0%",
		"C     0.2200  100.0%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSolvePinnedFlag(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "fig1.tsv")
	if err := os.WriteFile(graphPath, []byte(figure1TSV), 0o644); err != nil {
		t.Fatal(err)
	}
	pinPath := filepath.Join(dir, "pins.txt")
	if err := os.WriteFile(pinPath, []byte("E\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "2", "-pin", pinPath})
	})
	if !strings.Contains(out, "1  E") {
		t.Errorf("pinned E not first:\n%s", out)
	}
	// Unknown pin label fails.
	if err := os.WriteFile(pinPath, []byte("nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "2", "-pin", pinPath}); err == nil {
		t.Error("unknown pin should fail")
	}
}

func TestGStatsGolden(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "fig1.tsv")
	if err := os.WriteFile(graphPath, []byte(figure1TSV), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runGStats(context.Background(), []string{"-in", graphPath, "-variant", "n"})
	})
	for _, want := range []string{
		"items:        5",
		"edges:        6",
		"valid normalized preference graph",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gstats missing %q:\n%s", want, out)
		}
	}
}

func TestGStatsValidationFailure(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "bad.tsv")
	// Out-weights exceed 1: invalid under Normalized.
	bad := "node\tx\t0.5\nnode\ty\t0.25\nnode\tz\t0.25\nedge\tx\ty\t0.7\nedge\tx\tz\t0.7\n"
	if err := os.WriteFile(graphPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runGStats(context.Background(), []string{"-in", graphPath, "-variant", "n"}); err == nil {
		t.Fatal("invalid normalized graph should fail validation")
	}
	// But it is a fine Independent graph.
	if err := runGStats(context.Background(), []string{"-in", graphPath, "-variant", "i"}); err != nil {
		t.Fatalf("independent validation: %v", err)
	}
}
