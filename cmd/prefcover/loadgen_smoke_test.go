package main

// The loadgen smoke test `make ci` (and `make loadgen-smoke`) runs: build
// the real prefcoverd and prefcover binaries, boot the daemon on an
// ephemeral port, fire a one-second loadgen burst at it, and check the
// BENCH_serving.json entry it records — per-endpoint quantiles, error
// budget, cache ratio, git SHA. It also re-prints the request schedule
// twice and byte-compares, pinning the reproducibility contract at the
// CLI surface (same seed + mix ⇒ identical traffic).

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prefcover/internal/loadgen"
	"prefcover/internal/profilez"
)

func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping loadgen smoke test in -short mode")
	}
	dir := t.TempDir()
	daemon := filepath.Join(dir, "prefcoverd")
	if out, err := exec.Command("go", "build", "-o", daemon, "prefcover/cmd/prefcoverd").CombinedOutput(); err != nil {
		t.Fatalf("go build prefcoverd: %v\n%s", err, out)
	}
	cli := filepath.Join(dir, "prefcover")
	if out, err := exec.Command("go", "build", "-o", cli, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build prefcover: %v\n%s", err, out)
	}

	cmd := exec.Command(daemon, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "prefcoverd listening") {
				for _, tok := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(tok, "addr="); ok {
						select {
						case addrCh <- v:
						default:
						}
					}
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never logged its listen address")
	}

	// One short real burst against the live daemon, recorded to a scratch
	// BENCH_serving.json.
	benchPath := filepath.Join(dir, "BENCH_serving.json")
	profilePath := filepath.Join(dir, "cpu.pb.gz")
	run := exec.Command(cli, "loadgen",
		"-server", base, "-preset", "yc", "-seed", "1",
		"-rps", "50", "-duration", "1s", "-replay", "500",
		"-profile", profilePath,
		"-out", benchPath, "-quiet")
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("prefcover loadgen: %v\n%s", err, out)
	}

	f, err := loadgen.ReadBench(benchPath)
	if err != nil {
		t.Fatalf("reading %s: %v", benchPath, err)
	}
	if len(f.Entries) != 1 {
		t.Fatalf("got %d bench entries, want 1", len(f.Entries))
	}
	e := f.Entries[0]
	if e.Kind != loadgen.BenchKindRun || e.Report == nil {
		t.Fatalf("unexpected entry shape: kind=%q report=%v", e.Kind, e.Report != nil)
	}
	if e.GitSHA == "" || e.GoVersion == "" || e.Generated == "" {
		t.Fatalf("entry missing provenance: %+v", e)
	}
	rep := e.Report
	if err := rep.Validate(); err != nil {
		t.Fatalf("recorded report violates its invariants: %v", err)
	}
	if rep.Seed != 1 || rep.Preset != "YC" {
		t.Fatalf("workload identity not recorded: seed=%d preset=%q", rep.Seed, rep.Preset)
	}
	solve := rep.Endpoints["solve"]
	if solve == nil || solve.Sent == 0 {
		t.Fatalf("no solve traffic recorded: %+v", rep.Endpoints)
	}
	if !(solve.P50 > 0 && solve.P50 <= solve.P99 && solve.P99 <= solve.Max) {
		t.Fatalf("solve quantiles implausible: p50=%g p99=%g max=%g", solve.P50, solve.P99, solve.Max)
	}
	if rep.ErrorRatio != 0 {
		t.Fatalf("fault-free smoke burst reported errors: %g", rep.ErrorRatio)
	}
	if rep.Cache.HitRatio < 0 || rep.Cache.HitRatio > 1 || rep.Cache.Hits == 0 {
		t.Fatalf("cache stats implausible: %+v", rep.Cache)
	}
	if rep.Replay == nil || rep.Replay.Requests != 500 {
		t.Fatalf("replay validation missing: %+v", rep.Replay)
	}

	// -profile: the server-side CPU capture spanning the burst must be on
	// disk as a decodable gzipped pprof protobuf, and the bench entry must
	// carry the artifact's identity.
	if e.Profile == nil {
		t.Fatal("bench entry has no profile artifact despite -profile")
	}
	if e.Profile.Path != profilePath || e.Profile.CaptureID == "" || e.Profile.Seconds <= 0 {
		t.Fatalf("profile artifact metadata incomplete: %+v", e.Profile)
	}
	data, err := os.ReadFile(profilePath)
	if err != nil {
		t.Fatalf("profile artifact not written: %v", err)
	}
	if int64(len(data)) != e.Profile.Bytes {
		t.Fatalf("artifact is %d bytes, entry says %d", len(data), e.Profile.Bytes)
	}
	info, err := profilez.ReadProfile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("artifact does not decode as a pprof profile: %v", err)
	}
	if info.Samples != e.Profile.Samples {
		t.Fatalf("artifact has %d samples, entry says %d", info.Samples, e.Profile.Samples)
	}

	// Reproducibility at the CLI surface: the printed schedule is
	// byte-identical across invocations of the same seed and mix.
	schedArgs := []string{"loadgen", "-print-schedule", "-seed", "1", "-rps", "200", "-duration", "5s"}
	first, err := exec.Command(cli, schedArgs...).Output()
	if err != nil {
		t.Fatalf("print-schedule: %v", err)
	}
	second, err := exec.Command(cli, schedArgs...).Output()
	if err != nil {
		t.Fatalf("print-schedule (rerun): %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("same seed printed different schedules across processes")
	}
	if len(first) == 0 || !bytes.HasPrefix(first, []byte("# loadgen schedule seed=1 ")) {
		t.Fatalf("unexpected schedule header: %.80s", first)
	}
	// A different seed must change the bytes (the flag actually reaches
	// the generator).
	other, err := exec.Command(cli, "loadgen", "-print-schedule", "-seed", "2", "-rps", "200", "-duration", "5s").Output()
	if err != nil {
		t.Fatalf("print-schedule (seed 2): %v", err)
	}
	if bytes.Equal(first, other) {
		t.Fatal("different seeds printed identical schedules")
	}
}
