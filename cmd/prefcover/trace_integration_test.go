package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSolveTraceFlag runs the full gen -> adapt -> solve -trace path and
// validates the flight-recorder output: a loadable Chrome trace-event
// JSON with the documented phase spans and exactly one iteration span per
// greedy selection, whose work counters agree with the solve totals.
func TestSolveTraceFlag(t *testing.T) {
	dir := t.TempDir()
	sessions := filepath.Join(dir, "sessions.tsv")
	graphPath := filepath.Join(dir, "graph.tsv")
	tracePath := filepath.Join(dir, "trace.json")

	if err := runGen(context.Background(), []string{"-preset", "YC", "-scale", "0.004", "-seed", "5", "-out", sessions}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runAdapt(context.Background(), []string{"-in", sessions, "-out", graphPath, "-variant", "i"}); err != nil {
		t.Fatalf("adapt: %v", err)
	}
	const k = 12
	if err := runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "12", "-trace", tracePath}); err != nil {
		t.Fatalf("solve: %v", err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var events []struct {
		Name string                 `json:"name"`
		Cat  string                 `json:"cat"`
		Ph   string                 `json:"ph"`
		Dur  float64                `json:"dur"`
		Args map[string]interface{} `json:"args"`
	}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a Chrome trace-event JSON array: %v", err)
	}

	names := make(map[string]int)
	iterations := 0
	var lastTotalEvals, solveGainEvals, solveIterations float64
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Errorf("event %q ph=%q, want X", ev.Name, ev.Ph)
		}
		names[ev.Name]++
		if len(ev.Name) > len("iteration ") && ev.Name[:len("iteration ")] == "iteration " {
			iterations++
			if v, ok := ev.Args["totalEvals"].(float64); ok {
				lastTotalEvals = v
			}
			for _, key := range []string{"node", "gain", "cover", "evaluated", "reevaluated"} {
				if _, ok := ev.Args[key]; !ok {
					t.Errorf("%s missing attr %q", ev.Name, key)
				}
			}
		}
		if ev.Name == "solve" {
			solveGainEvals, _ = ev.Args["gainEvals"].(float64)
			solveIterations, _ = ev.Args["iterations"].(float64)
		}
	}
	for _, want := range []string{"prefcover solve", "parse", "solve", "report"} {
		if names[want] != 1 {
			t.Errorf("span %q appears %d times, want 1", want, names[want])
		}
	}
	if iterations != k {
		t.Errorf("%d iteration spans, want %d", iterations, k)
	}
	if solveIterations != k {
		t.Errorf("solve span iterations attr = %v, want %d", solveIterations, k)
	}
	// The per-iteration running total must land exactly on the solve
	// total — the iteration spans really carry the ProgressEvent stream.
	if lastTotalEvals == 0 || lastTotalEvals != solveGainEvals {
		t.Errorf("last iteration totalEvals = %v, solve gainEvals = %v", lastTotalEvals, solveGainEvals)
	}
}

// TestSolveWithoutTrace keeps the untraced path clean: no trace file, no
// crash from the nil-span plumbing.
func TestSolveWithoutTrace(t *testing.T) {
	dir := t.TempDir()
	sessions := filepath.Join(dir, "sessions.tsv")
	graphPath := filepath.Join(dir, "graph.tsv")
	if err := runGen(context.Background(), []string{"-preset", "YC", "-scale", "0.002", "-seed", "2", "-out", sessions}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if err := runAdapt(context.Background(), []string{"-in", sessions, "-out", graphPath, "-variant", "i"}); err != nil {
		t.Fatalf("adapt: %v", err)
	}
	if err := runSolve(context.Background(), []string{"-in", graphPath, "-variant", "i", "-k", "3"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.json")); !os.IsNotExist(err) {
		t.Errorf("unexpected trace file: %v", err)
	}
}
