package main

// Tests for the client half of distributed tracing: the span tree
// remoteClient.do records around retried calls, the traceparent each
// attempt injects, and the merged client+server Chrome trace file that
// -trace writes.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prefcover/internal/retry"
	"prefcover/internal/trace"
)

// TestRetryAttemptSpansAreSiblings forces one 503-then-200 retry and
// checks the recorded shape: a single call span with one child span per
// attempt — siblings, distinct span IDs, each injected on the wire as its
// own traceparent so every server-side request parents to the attempt
// that caused it.
func TestRetryAttemptSpansAreSiblings(t *testing.T) {
	var (
		mu      sync.Mutex
		parents []string
	)
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		parents = append(parents, r.Header.Get(trace.TraceparentHeader))
		mu.Unlock()
		if n == 1 {
			http.Error(w, `{"error":"shed"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "unused.json")
	c := &remoteClient{policy: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}}
	c.tr = newClientTrace(out, "solve", ts.URL)
	var reply map[string]any
	if err := c.do(context.Background(), http.MethodPost, ts.URL+"/v1/solve", "application/json", []byte("{}"), nil, true, &reply); err != nil {
		t.Fatalf("do: %v", err)
	}
	c.tr.root.End()

	calls = len(parents)
	if calls != 2 {
		t.Fatalf("server saw %d attempts, want 2", calls)
	}
	var call *trace.Span
	for _, sp := range c.tr.root.Children() {
		if sp.Name() == "call POST /v1/solve" {
			call = sp
		}
	}
	if call == nil {
		t.Fatalf("no call span; children = %v", c.tr.root.Children())
	}
	if got := call.Attr("attempts"); got != int64(2) {
		t.Errorf("call attempts attr = %v, want 2", got)
	}
	attempts := call.Children()
	if len(attempts) != 2 {
		t.Fatalf("call span has %d children, want 2 attempt spans", len(attempts))
	}
	for i, asp := range attempts {
		if want := "attempt " + string(rune('1'+i)); asp.Name() != want {
			t.Errorf("attempt %d span named %q, want %q", i, asp.Name(), want)
		}
		// Siblings: both parented to the call span, never to each other.
		if asp.ParentSpanID() != call.SpanID() {
			t.Errorf("attempt %d parent = %q, want call span %q", i, asp.ParentSpanID(), call.SpanID())
		}
		if asp.TraceID() != c.tr.sc.TraceID {
			t.Errorf("attempt %d trace ID = %q, want %q", i, asp.TraceID(), c.tr.sc.TraceID)
		}
		// The wire header carried exactly this attempt's identity.
		sc, err := trace.ParseTraceparent(parents[i])
		if err != nil {
			t.Fatalf("attempt %d traceparent %q: %v", i, parents[i], err)
		}
		if sc.TraceID != c.tr.sc.TraceID || sc.SpanID != asp.SpanID() {
			t.Errorf("attempt %d injected %+v, want span %q of trace %q",
				i, sc, asp.SpanID(), c.tr.sc.TraceID)
		}
	}
	if attempts[0].SpanID() == attempts[1].SpanID() {
		t.Error("attempt spans share a span ID")
	}
	if attempts[0].Attr("status") != int64(503) || attempts[1].Attr("status") != int64(200) {
		t.Errorf("attempt statuses = %v, %v; want 503 then 200",
			attempts[0].Attr("status"), attempts[1].Attr("status"))
	}
	if _, ok := attempts[1].Attr("backoffSeconds").(float64); !ok {
		t.Errorf("retried attempt has no backoffSeconds attr; attrs = %v", attempts[1].Attrs())
	}
}

// TestClientTraceFinishMergesServerSpans runs finish() against a fake
// prefcoverd serving one span on /debug/traces and checks the written
// Chrome file: client events on pid 1, server events on pid 2, one
// rebased timeline starting at ts=0.
func TestClientTraceFinishMergesServerSpans(t *testing.T) {
	serverEvent := trace.ChromeEvent{
		Name: "request /v1/solve", Ph: "X",
		TS: float64(time.Now().UnixMicro()), Dur: 1500, PID: 1, TID: 1,
		Args: map[string]interface{}{"traceID": "ignored-here"},
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/traces" {
			t.Errorf("unexpected fetch path %q", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("epoch") != "unix" {
			t.Errorf("fetch missing epoch=unix: %s", r.URL.RawQuery)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode([]trace.ChromeEvent{serverEvent})
	}))
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "merged.json")
	ct := newClientTrace(out, "solve", ts.URL)
	ct.startCall(http.MethodPost, ts.URL+"/v1/solve").End()
	if err := ct.finish(context.Background(), retry.Policy{MaxAttempts: 1}); err != nil {
		t.Fatalf("finish: %v", err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.ChromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("merged trace is not Chrome JSON: %v\n%s", err, data)
	}
	pids := map[int]int{}
	minTS := events[0].TS
	sawServer := false
	for _, ev := range events {
		pids[ev.PID]++
		if ev.TS < minTS {
			minTS = ev.TS
		}
		if ev.Name == serverEvent.Name {
			sawServer = true
			if ev.PID != 2 {
				t.Errorf("server event pid = %d, want 2", ev.PID)
			}
		}
	}
	if !sawServer {
		t.Error("merged file lacks the server-side event")
	}
	if pids[1] == 0 {
		t.Error("merged file lacks client-side events on pid 1")
	}
	if minTS != 0 {
		t.Errorf("merged timeline starts at %v, want rebased 0", minTS)
	}
	names := map[string]bool{}
	for _, ev := range events {
		names[ev.Name] = true
	}
	for _, want := range []string{"remote solve", "call POST /v1/solve"} {
		if !names[want] {
			t.Errorf("merged file missing client span %q", want)
		}
	}
}

// TestClientTraceNilSafety: without -trace every hook is a nil receiver
// and must cost nothing and do nothing.
func TestClientTraceNilSafety(t *testing.T) {
	var ct *clientTrace
	if sp := ct.startCall(http.MethodGet, "http://x/y"); sp != nil {
		t.Errorf("nil clientTrace startCall = %v", sp)
	}
	if err := ct.finish(context.Background(), retry.Policy{}); err != nil {
		t.Errorf("nil clientTrace finish: %v", err)
	}
}
