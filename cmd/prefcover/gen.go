package main

import (
	"context"
	"flag"
	"fmt"

	"prefcover/clickstream"
	"prefcover/synth"
)

func runGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		preset = fs.String("preset", "YC", "dataset preset: PE, PF, PM or YC")
		scale  = fs.Float64("scale", 0.01, "fraction of the paper-scale dataset size, in (0,1]")
		seed   = fs.Int64("seed", 42, "random seed")
		format = fs.String("format", "tsv", "output format: tsv or jsonl")
		out    = fs.String("out", "-", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	catSpec, sesSpec, err := synth.PresetSpecs(synth.Preset(*preset), *scale, *seed)
	if err != nil {
		return err
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		return err
	}
	store, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		return err
	}
	w, closeOut, err := createOut(*out)
	if err != nil {
		return err
	}
	switch *format {
	case "tsv":
		tw := clickstream.NewTSVWriter(w)
		for _, s := range store.Sessions() {
			if err := tw.Write(&s); err != nil {
				return err
			}
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	case "jsonl":
		jw := clickstream.NewJSONLWriter(w)
		for _, s := range store.Sessions() {
			if err := jw.Write(&s); err != nil {
				return err
			}
		}
		if err := jw.Flush(); err != nil {
			return err
		}
	default:
		closeOut()
		return fmt.Errorf("unknown format %q (want tsv or jsonl)", *format)
	}
	return closeOut()
}
