package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"prefcover"
)

func runSimulate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	var (
		in       = fs.String("in", "-", "input graph (default stdin)")
		variant  = fs.String("variant", "independent", "variant: independent or normalized")
		setPath  = fs.String("set", "", "file with retained labels, one per line (required)")
		requests = fs.Int("requests", 200000, "simulated consumer requests")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *setPath == "" {
		return fmt.Errorf("-set is required")
	}
	v, err := prefcover.ParseVariant(*variant)
	if err != nil {
		return err
	}
	g, err := readGraph(*in)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*setPath)
	if err != nil {
		return err
	}
	var labels []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			labels = append(labels, line)
		}
	}
	set, err := prefcover.LookupAll(g, labels)
	if err != nil {
		return err
	}
	est, err := prefcover.Simulate(g, v, set, *requests, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("retained:  %d items\n", len(set))
	fmt.Printf("predicted: %.4f\n", est.Predicted)
	fmt.Printf("simulated: %.4f ± %.4f (n=%d)\n", est.Rate, est.StdErr, est.Requests)
	if est.Within(4) {
		fmt.Println("agreement: within 4 sigma")
	} else {
		fmt.Println("agreement: OUTSIDE 4 sigma — model and simulation disagree")
	}
	return nil
}
