package main

// End-to-end capture test: boot the real daemon, arm a server-side CPU
// capture through /debug/profilez while inline solves hammer /v1/solve,
// then download and decode the capture and find the solver's pprof
// labels in it — the full path `prefcover loadgen -profile` drives.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prefcover"
	"prefcover/internal/graphtest"
	"prefcover/internal/profilez"
)

// startDaemon builds and boots prefcoverd on an ephemeral port and
// returns its base URL; cleanup kills the process.
func startDaemon(t *testing.T, args ...string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "prefcoverd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "prefcoverd listening") {
				for _, tok := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(tok, "addr="); ok {
						select {
						case addrCh <- v:
						default:
						}
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never logged its listen address")
		return ""
	}
}

func TestProfileCaptureE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon e2e in -short mode")
	}
	base := startDaemon(t)

	// Inline bodies bypass the solve cache, so every request really runs
	// the (labeled) solver.
	var graphBody bytes.Buffer
	g := graphtest.Random(rand.New(rand.NewSource(7)), 4000, 6, prefcover.Independent)
	if err := prefcover.WriteGraphJSON(&graphBody, g); err != nil {
		t.Fatal(err)
	}
	solveOnce := func() {
		resp, err := http.Post(base+"/v1/solve?variant=i&k=150&lazy=0",
			"application/json", bytes.NewReader(graphBody.Bytes()))
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status = %d", resp.StatusCode)
		}
	}
	solveOnce() // warm up (JIT-free, but page the graph code in)

	// Arm a 2s server-side CPU capture, then keep the solver busy for the
	// whole window.
	type captureReply struct {
		ID string `json:"id"`
	}
	capDone := make(chan captureReply, 1)
	capErr := make(chan string, 1)
	go func() {
		resp, err := http.Post(base+"/debug/profilez?capture=cpu&seconds=2", "", nil)
		if err != nil {
			capErr <- err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			capErr <- string(body)
			return
		}
		var entry captureReply
		if err := json.Unmarshal(body, &entry); err != nil {
			capErr <- err.Error()
			return
		}
		capDone <- entry
	}()

	var entry captureReply
	deadline := time.Now().Add(30 * time.Second)
loop:
	for {
		select {
		case entry = <-capDone:
			break loop
		case msg := <-capErr:
			t.Fatalf("capture failed: %s", msg)
		default:
			if time.Now().After(deadline) {
				t.Fatal("capture never completed")
			}
			solveOnce()
		}
	}

	resp, err := http.Get(base + "/debug/profilez?download=" + entry.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("download status = %d", resp.StatusCode)
	}
	info, err := profilez.ReadProfile(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if info.Samples == 0 {
		t.Skip("CPU capture recorded no samples (throttled environment)")
	}
	for _, want := range [][2]string{
		{profilez.LabelStrategy, "scan"},
		{profilez.LabelEndpoint, "/v1/solve"},
		{profilez.LabelKBucket, profilez.KBucket(150)},
	} {
		if !info.HasLabel(want[0], want[1]) {
			t.Errorf("server-side capture (%d samples) has no sample labeled %s=%q; labels: %v",
				info.Samples, want[0], want[1], info.Labels)
		}
	}
}
