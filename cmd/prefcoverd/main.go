// Command prefcoverd serves the paper's end-to-end system (Figure 2) over
// HTTP: POST a JSONL clickstream to /v1/pipeline?k=... and receive the
// retained inventory with coverage metadata; /v1/adapt and /v1/solve
// expose the two stages separately. GET /metrics exposes Prometheus
// telemetry (request latencies, solver work counters).
//
// The daemon is production-shaped: per-request solve deadlines
// (-solve-timeout), bounded concurrency with load shedding
// (-max-concurrent), and graceful shutdown — SIGINT/SIGTERM stops the
// listener, drains in-flight requests for up to -shutdown-grace, then
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prefcover/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxBody       = flag.Int64("max-body-mb", 64, "maximum request body size in MiB")
		maxK          = flag.Int("max-k", 0, "maximum solvable budget (0 = unlimited)")
		solveTimeout  = flag.Duration("solve-timeout", 0, "per-request deadline for /v1/* work; expired requests get 503 (0 = none)")
		maxConcurrent = flag.Int("max-concurrent", 0, "maximum concurrently executing /v1/* requests; excess get 429 (0 = unlimited)")
		shutdownGrace = flag.Duration("shutdown-grace", 30*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
		quiet         = flag.Bool("quiet", false, "suppress request logging")
	)
	flag.Parse()
	var logger *log.Logger
	if !*quiet {
		logger = log.New(os.Stderr, "prefcoverd ", log.LstdFlags)
	}
	srv := server.New(server.Limits{
		MaxBodyBytes:  *maxBody << 20,
		MaxSolveK:     *maxK,
		SolveTimeout:  *solveTimeout,
		MaxConcurrent: *maxConcurrent,
	}, logger)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Printf("prefcoverd listening on %s", *addr)

	select {
	case err := <-errc:
		// Listener failed before any shutdown was requested (port in use,
		// bad address); ErrServerClosed cannot happen on this path.
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	log.Printf("prefcoverd shutting down, draining for up to %s", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		log.Printf("prefcoverd shutdown incomplete: %v", err)
		os.Exit(1)
	}
	// The ListenAndServe goroutine returns http.ErrServerClosed after a
	// clean Shutdown; anything else is a real serve error worth surfacing.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Printf("prefcoverd stopped")
}
