// Command prefcoverd serves the paper's end-to-end system (Figure 2) over
// HTTP: POST a JSONL clickstream to /v1/pipeline?k=... and receive the
// retained inventory with coverage metadata; /v1/adapt and /v1/solve
// expose the two stages separately. GET /metrics exposes Prometheus
// telemetry (request latencies, solver work counters, runtime health);
// GET /version reports the build; GET /debug/traces dumps the
// flight-recorder ring populated by -trace-sample and by inbound W3C
// traceparent headers (distributed traces are always recorded); GET
// /debug/statusz is the one-page HTML operator dashboard; GET
// /debug/profilez indexes the continuous-profiling capture ring
// (periodic and trigger-fired pprof snapshots, with on-demand capture).
//
// The daemon is production-shaped: per-request solve deadlines
// (-solve-timeout), bounded concurrency with load shedding
// (-max-concurrent), and graceful shutdown — SIGINT/SIGTERM stops the
// listener, drains in-flight requests for up to -shutdown-grace, then
// exits. All logging is structured (log/slog) and every line of a
// request carries its X-Request-ID.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prefcover/internal/faults"
	"prefcover/internal/jobs"
	"prefcover/internal/profilez"
	"prefcover/internal/server"
	"prefcover/internal/slo"
	"prefcover/internal/store"
	"prefcover/internal/version"
)

func main() {
	os.Exit(run())
}

// run holds the real main so deferred cleanups survive the exit path.
func run() int {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxBody       = flag.Int64("max-body-mb", 64, "maximum request body size in MiB")
		maxK          = flag.Int("max-k", 0, "maximum solvable budget (0 = unlimited)")
		solveTimeout  = flag.Duration("solve-timeout", 0, "per-request deadline for /v1/* work; expired requests get 503 (0 = none)")
		maxConcurrent = flag.Int("max-concurrent", 0, "maximum concurrently executing /v1/* requests; excess get 429 (0 = unlimited)")
		slowThreshold = flag.Duration("slow-request-threshold", 0, "log one structured warning for every request at least this slow, with request and trace IDs (0 = off)")
		shutdownGrace = flag.Duration("shutdown-grace", 30*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
		quiet         = flag.Bool("quiet", false, "log warnings and errors only (suppresses access logs and lifecycle messages)")
		traceSample   = flag.Int("trace-sample", 0, "record a flight-recorder trace for every Nth /v1/* request, dumped at /debug/traces (0 = off)")
		traceCap      = flag.Int("trace-capacity", 256, "how many request traces the flight recorder retains")
		enablePprof   = flag.Bool("pprof", false, "mount the interactive net/http/pprof handlers under /debug/pprof/ beside the other /debug/* pages; /debug/profilez (always on) serves retained captures regardless")
		showVersion   = flag.Bool("version", false, "print the build identity and exit")

		profileDir      = flag.String("profile-dir", "", "retain /debug/profilez captures in this directory (empty = a private temp dir removed on exit)")
		profileInterval = flag.Duration("profile-interval", 0, "capture heap+goroutine profiles into the /debug/profilez ring this often (0 = trigger/on-demand only)")
		profileFiles    = flag.Int("profile-max-files", 0, "maximum retained profile captures before oldest-first eviction (0 = default)")
		profileBytes    = flag.Int64("profile-max-bytes-mb", 0, "maximum MiB of retained profile captures before oldest-first eviction (0 = default)")

		storeDir       = flag.String("store-dir", "", "persist registered graphs to this directory and reload them at startup (empty = in-memory only)")
		storeMaxGraphs = flag.Int("store-max-graphs", 0, "maximum registered graphs before LRU eviction (0 = default)")
		storeMaxBytes  = flag.Int64("store-max-bytes-mb", 0, "maximum MiB of registered graph content before LRU eviction (0 = default)")
		jobWorkers     = flag.Int("job-workers", 1, "async solve workers; they share -max-concurrent slots with synchronous requests")
		jobQueue       = flag.Int("job-queue", 0, "maximum queued async jobs before submissions get 429 (0 = default)")

		sloSpecText    = flag.String("slo-spec", "", "comma-separated SLO objectives for the burn-rate monitor, e.g. \"avail:/v1/solve:99.9,p99:/v1/solve:0.05\"; surfaced at /debug/slo and as ALERTS series on /metrics (empty = off)")
		scrapeInterval = flag.Duration("scrape-interval", 0, "metrics snapshot cadence for the SLO monitor; in -gateway mode this also enables node /metrics federation even without -slo-spec (0 = 10s when SLOs are on)")
		alertWebhook   = flag.String("alert-webhook", "", "POST SLO alert firing/resolved transitions to this URL as JSON, with retries (empty = off)")
		sloFastWindow  = flag.Duration("slo-fast-window", 0, "fast burn-rate evaluation window (0 = 5m)")
		sloSlowWindow  = flag.Duration("slo-slow-window", 0, "slow burn-rate evaluation window (0 = 1h)")
		sloFor         = flag.Duration("slo-for", 0, "how long a breach (or recovery) must persist before an alert fires (or resolves) (0 = 30s)")

		faultSpec     = flag.String("fault-spec", "", "inject faults into /v1/* requests, e.g. \"seed=7,error=0.05,throttle=0.02,latency=5ms@0.3\" (chaos testing; empty = off)")
		faultSpecDisk = flag.String("fault-spec-disk", "", "inject faults into -store-dir snapshot writes, same grammar as -fault-spec (empty = off)")
		faultControl  = flag.Bool("fault-control", false, "mount /debug/faults so the HTTP fault injector can be inspected and replaced at runtime (test builds only)")

		gateway = flag.Bool("gateway", false, "serve as a cluster routing gateway over the -nodes backends instead of a single node")
		gf      gatewayFlags
	)
	flag.StringVar(&gf.nodes, "nodes", "", "comma-separated backend prefcoverd base URLs for -gateway (host:port or http://host:port)")
	flag.IntVar(&gf.replicas, "replicas", 0, "graphs are replicated to this many nodes in -gateway mode (0 = 2)")
	flag.IntVar(&gf.vnodes, "vnodes", 0, "virtual nodes per backend on the -gateway hash ring (0 = 128)")
	flag.DurationVar(&gf.probeInterval, "probe-interval", 0, "-gateway readiness-probe period (0 = 2s)")
	flag.DurationVar(&gf.probeTimeout, "probe-timeout", 0, "-gateway readiness-probe timeout (0 = 1s)")
	flag.DurationVar(&gf.requestTimeout, "request-timeout", 0, "-gateway per-attempt deadline for forwarded requests (0 = none)")
	flag.IntVar(&gf.maxAttempts, "max-attempts", 0, "-gateway failover budget per call, including the first attempt (0 = 3)")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Get())
		return 0
	}

	// One handler for everything — daemon lifecycle and per-request
	// access logs — so -quiet silences the whole process consistently
	// instead of only the injected half.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	sloSpec, err := slo.ParseSpec(*sloSpecText)
	if err != nil {
		logger.Error("bad -slo-spec", "error", err)
		return 1
	}
	sf := sloFlags{
		spec:           sloSpec,
		scrapeInterval: *scrapeInterval,
		fastWindow:     *sloFastWindow,
		slowWindow:     *sloSlowWindow,
		forDuration:    *sloFor,
		webhook:        *alertWebhook,
	}

	if *gateway {
		return runGateway(*addr, gf, sf, *maxBody, *shutdownGrace, logger)
	}

	httpFaults, err := parseFaultFlag("fault-spec", *faultSpec, logger)
	if err != nil {
		return 1
	}
	diskFaults, err := parseFaultFlag("fault-spec-disk", *faultSpecDisk, logger)
	if err != nil {
		return 1
	}

	srv, err := server.NewWithConfig(server.Config{
		Limits: server.Limits{
			MaxBodyBytes:         *maxBody << 20,
			MaxSolveK:            *maxK,
			SolveTimeout:         *solveTimeout,
			MaxConcurrent:        *maxConcurrent,
			SlowRequestThreshold: *slowThreshold,
		},
		Logger: logger,
		Store: store.Options{
			Dir:       *storeDir,
			MaxGraphs: *storeMaxGraphs,
			MaxBytes:  *storeMaxBytes << 20,
			Faults:    diskFaults,
		},
		Jobs: jobs.Options{
			Workers:    *jobWorkers,
			QueueDepth: *jobQueue,
		},
		Faults:       httpFaults,
		FaultControl: *faultControl,
		EnablePprof:  *enablePprof,
		SLO: server.SLOConfig{
			Spec:           sf.spec,
			ScrapeInterval: sf.scrapeInterval,
			FastWindow:     sf.fastWindow,
			SlowWindow:     sf.slowWindow,
			ForDuration:    sf.forDuration,
			WebhookURL:     sf.webhook,
		},
		Profilez: profilez.Options{
			Dir:      *profileDir,
			Interval: *profileInterval,
			MaxFiles: *profileFiles,
			MaxBytes: *profileBytes << 20,
		},
	})
	if err != nil {
		logger.Error("server construction failed", "error", err)
		return 1
	}
	defer srv.Close()
	if *traceSample > 0 {
		srv.EnableTracing(*traceSample, *traceCap)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Listen explicitly (rather than ListenAndServe) so the log line
	// carries the resolved address: with -addr 127.0.0.1:0 the kernel
	// picks the port, and scripts (the CI statusz smoke test) read it
	// from the "prefcoverd listening" line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listener failed", "error", err)
		return 1
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()
	logger.Info("prefcoverd listening", "addr", ln.Addr().String(), "version", version.Get().String())

	select {
	case err := <-errc:
		// Serve failed before any shutdown was requested; ErrServerClosed
		// cannot happen on this path.
		logger.Error("listener failed", "error", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately
	logger.Info("prefcoverd shutting down", "drain_grace", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "error", err)
		return 1
	}
	// The ListenAndServe goroutine returns http.ErrServerClosed after a
	// clean Shutdown; anything else is a real serve error worth surfacing.
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "error", err)
		return 1
	}
	logger.Info("prefcoverd stopped")
	return 0
}

// parseFaultFlag builds an injector from a -fault-spec style flag; an
// empty or inject-nothing spec yields nil (faults fully disabled). The
// activation is logged loudly — a daemon quietly injecting failures would
// be a debugging nightmare.
func parseFaultFlag(name, text string, logger *slog.Logger) (*faults.Injector, error) {
	spec, err := faults.ParseSpec(text)
	if err != nil {
		logger.Error("bad -"+name, "error", err)
		return nil, err
	}
	if !spec.Enabled() {
		return nil, nil
	}
	logger.Warn("fault injection enabled", "flag", name, "spec", spec.String())
	return faults.New(spec), nil
}
