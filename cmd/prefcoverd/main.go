// Command prefcoverd serves the paper's end-to-end system (Figure 2) over
// HTTP: POST a JSONL clickstream to /v1/pipeline?k=... and receive the
// retained inventory with coverage metadata; /v1/adapt and /v1/solve
// expose the two stages separately.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"prefcover/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxBody  = flag.Int64("max-body-mb", 64, "maximum request body size in MiB")
		maxK     = flag.Int("max-k", 0, "maximum solvable budget (0 = unlimited)")
		logLevel = flag.Bool("quiet", false, "suppress request logging")
	)
	flag.Parse()
	var logger *log.Logger
	if !*logLevel {
		logger = log.New(os.Stderr, "prefcoverd ", log.LstdFlags)
	}
	srv := server.New(server.Limits{
		MaxBodyBytes: *maxBody << 20,
		MaxSolveK:    *maxK,
	}, logger)
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("prefcoverd listening on %s", *addr)
	if err := httpServer.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
