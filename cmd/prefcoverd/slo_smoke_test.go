package main

// The SLO alerting smoke test `make ci` (and `make smoke`) runs: build
// the real binary, boot it with a tight availability SLO and a 90%
// error-rate fault injector, drive /v1/solve traffic, and watch the full
// alert lifecycle through the operator surface — ALERTS reaches firing
// on /metrics and /debug/slo reports it; then disarm the injector over
// /debug/faults and watch the alert resolve as clean traffic rolls the
// burn windows over. This is the real-binary counterpart of
// internal/server's fake-clock lifecycle tests: same state machine,
// actual process, wall clock, and self-scrape loop.

import (
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const (
	// Firing pins the severity: a 90% error rate against a 99% target is
	// a ~90x burn, far past the critical threshold. The resolved check is
	// severity-agnostic — during recovery the decaying windows may pass
	// through the warning band, and the alert resolves with whatever
	// severity its last breaching tick observed.
	alertFiringLine   = `ALERTS{alertname="avail_burn",endpoint="/v1/solve",severity="critical",state="firing"} 1`
	alertResolvedLine = `state="resolved"} 1`
)

func TestSLOAlertSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "prefcoverd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	d := startSmokeDaemon(t, bin,
		"-fault-control",
		"-fault-spec", "seed=1,error=0.9",
		"-slo-spec", "avail:/v1/solve:99",
		"-scrape-interval", "100ms",
		"-slo-fast-window", "2s",
		"-slo-slow-window", "4s",
		"-slo-for", "100ms",
	)

	// Phase 1: with 90% of solves injected as 500s against a 99% target,
	// the burn rate is ~90x budget — the alert must reach firing. Keep
	// sending traffic while polling so every scrape window has samples.
	if !pollAlert(t, d.base, alertFiringLine, 30*time.Second) {
		t.Fatalf("alert never fired; /metrics:\n%s", get(t, d.base+"/metrics", "text/plain"))
	}

	// The debug page must agree with the metric the moment it fires.
	sloPage := get(t, d.base+"/debug/slo", "text/html")
	if !strings.Contains(sloPage, "firing") || !strings.Contains(sloPage, "/v1/solve") {
		t.Errorf("/debug/slo does not show the firing alert:\n%s", sloPage)
	}

	// Phase 2: disarm the injector at runtime (empty spec removes it) and
	// keep driving clean traffic until the burn windows roll over and the
	// alert resolves.
	req, err := http.NewRequest(http.MethodPut, d.base+"/debug/faults", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("disarm faults: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disarm faults: status %d", resp.StatusCode)
	}

	if !pollAlert(t, d.base, alertResolvedLine, 30*time.Second) {
		t.Fatalf("alert never resolved after faults disarmed; /metrics:\n%s",
			get(t, d.base+"/metrics", "text/plain"))
	}
	metricsBody := get(t, d.base+"/metrics", "text/plain")
	validatePromText(t, metricsBody)
	if strings.Contains(metricsBody, `state="firing"} 1`) {
		t.Error("a firing series is still 1 after resolution")
	}

	d.stop(t)
}

// pollAlert drives /v1/solve traffic and scrapes /metrics until the
// wanted ALERTS line appears or the deadline passes. The request bodies
// are deliberately invalid: the passthrough responses are 400s, which
// never count against the availability SLO, so only injected 500s move
// the burn rate.
func pollAlert(t *testing.T, base, want string, deadline time.Duration) bool {
	t.Helper()
	until := time.Now().Add(deadline)
	for time.Now().Before(until) {
		for i := 0; i < 10; i++ {
			resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader("{}"))
			if err != nil {
				continue // injected connection resets are expected
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if strings.Contains(get(t, base+"/metrics", "text/plain"), want) {
			return true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}
