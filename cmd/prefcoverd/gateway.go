package main

// The -gateway mode: the same binary, serving the cluster routing
// gateway (internal/cluster) instead of a single node. One binary keeps
// deploys simple — `prefcoverd -gateway -nodes host1:8080,host2:8080`
// fronts any set of plain prefcoverd processes; the gateway carries the
// same operational surface (/healthz, /readyz, /metrics,
// /debug/statusz, /debug/cluster) and the same graceful-drain shutdown
// discipline as a node.

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prefcover/internal/cluster"
	"prefcover/internal/slo"
	"prefcover/internal/version"
)

// gatewayFlags is the -gateway flag group, registered by run.
type gatewayFlags struct {
	nodes          string
	replicas       int
	vnodes         int
	probeInterval  time.Duration
	probeTimeout   time.Duration
	requestTimeout time.Duration
	maxAttempts    int
}

// sloFlags is the parsed observability flag group (-slo-spec,
// -scrape-interval, -alert-webhook, windows), shared by both roles: a
// node self-scrapes its own registry, the gateway federates its members'.
type sloFlags struct {
	spec           slo.Spec
	scrapeInterval time.Duration
	fastWindow     time.Duration
	slowWindow     time.Duration
	forDuration    time.Duration
	webhook        string
}

// runGateway is run()'s -gateway branch: build the gateway, serve it,
// drain on SIGINT/SIGTERM. It mirrors the node path's lifecycle exactly
// so scripts that parse "prefcoverd listening" work against both roles.
func runGateway(addr string, gf gatewayFlags, sf sloFlags, maxBodyMB int64, shutdownGrace time.Duration, logger *slog.Logger) int {
	nodes := splitNodes(gf.nodes)
	if len(nodes) == 0 {
		logger.Error("-gateway requires -nodes host1:port,host2:port,...")
		return 1
	}
	gw, err := cluster.New(cluster.Options{
		Nodes:          nodes,
		Replicas:       gf.replicas,
		VNodes:         gf.vnodes,
		Logger:         logger,
		ProbeInterval:  gf.probeInterval,
		ProbeTimeout:   gf.probeTimeout,
		RequestTimeout: gf.requestTimeout,
		MaxAttempts:    gf.maxAttempts,
		MaxBodyBytes:   maxBodyMB << 20,
		ScrapeInterval: sf.scrapeInterval,
		SLO:            sf.spec,
		SLOFastWindow:  sf.fastWindow,
		SLOSlowWindow:  sf.slowWindow,
		SLOForDuration: sf.forDuration,
		AlertWebhook:   sf.webhook,
	})
	if err != nil {
		logger.Error("gateway construction failed", "error", err)
		return 1
	}
	defer gw.Close()

	httpServer := &http.Server{
		Addr:              addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logger.Error("listener failed", "error", err)
		return 1
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()
	logger.Info("prefcoverd listening", "addr", ln.Addr().String(),
		"role", "gateway", "nodes", len(nodes), "version", version.Get().String())

	select {
	case err := <-errc:
		logger.Error("listener failed", "error", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	logger.Info("prefcoverd shutting down", "drain_grace", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete", "error", err)
		return 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve failed", "error", err)
		return 1
	}
	logger.Info("prefcoverd stopped")
	return 0
}

// splitNodes parses the -nodes list: comma-separated, blanks ignored.
func splitNodes(raw string) []string {
	var out []string
	for _, tok := range strings.Split(raw, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
