package main

// The cluster smoke test `make ci` (and `make cluster-smoke`) runs: build
// the real binary once, boot three prefcoverd nodes plus a -gateway
// process on ephemeral ports, push a graph through the gateway (checking
// it replicates), solve through the gateway, then kill the node that
// served the solve and check (a) the next solve still succeeds with the
// identical ordered prefix — the gateway failed over to the surviving
// replica — (b) the prober marks the corpse unhealthy, and (c) draining
// it rebalances the ring to the two survivors while solves keep working.
// Finally every process must drain to a clean exit on SIGTERM. This is
// the real-binary counterpart of internal/cluster's in-process chaos
// suite: same claims, actual processes and TCP.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"prefcover"
	"prefcover/internal/graphtest"
)

// smokeDaemon is one real prefcoverd process: the command, the resolved
// listen address parsed off its "prefcoverd listening" log line, and a
// channel that yields the full log once stderr hits EOF.
type smokeDaemon struct {
	cmd     *exec.Cmd
	base    string // http://host:port
	logDone chan string
}

func startSmokeDaemon(t *testing.T, bin string, args ...string) *smokeDaemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	d := &smokeDaemon{cmd: cmd, logDone: make(chan string, 1)}
	addrCh := make(chan string, 1)
	go func() {
		var all strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			all.WriteString(line + "\n")
			if strings.Contains(line, "prefcoverd listening") {
				for _, tok := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(tok, "addr="); ok {
						select {
						case addrCh <- v:
						default:
						}
					}
				}
			}
		}
		d.logDone <- all.String()
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon (%v) never logged its listen address; log so far:\n%s",
			args, <-d.logDone)
	}
	return d
}

// stop SIGTERMs the daemon and requires a clean drain (exit 0).
func (d *smokeDaemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var log string
	select {
	case log = <-d.logDone:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon %s did not exit after SIGTERM", d.base)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon %s exit: %v\nlog:\n%s", d.base, err, log)
	}
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping cluster smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "prefcoverd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Three nodes, then the gateway fronting them. Fast probes so the
	// kill below is noticed within the test's patience.
	nodes := make(map[string]*smokeDaemon, 3)
	var nodeURLs []string
	for i := 0; i < 3; i++ {
		d := startSmokeDaemon(t, bin)
		nodes[d.base] = d
		nodeURLs = append(nodeURLs, d.base)
	}
	gw := startSmokeDaemon(t, bin, "-gateway",
		"-nodes", strings.Join(nodeURLs, ","),
		"-probe-interval", "100ms", "-probe-timeout", "2s", "-max-attempts", "4")

	if body := get(t, gw.base+"/readyz", "application/json"); !strings.Contains(body, `"ready"`) {
		t.Fatalf("gateway /readyz body: %s", body)
	}

	// Push one graph through the gateway; it must land on R=2 replicas.
	g := graphtest.Random(rand.New(rand.NewSource(42)), 300, 6, prefcover.Independent)
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, gw.base+"/v1/graphs/smoke", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT graph through gateway = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Prefcover-Replicas"); got != "2" {
		t.Fatalf("X-Prefcover-Replicas = %q, want 2", got)
	}

	// Solve through the gateway; the X-Prefcover-Node header names the
	// replica that answered — that's the one we kill.
	order, victim := smokeSolve(t, gw.base)
	if len(order) == 0 || victim == "" {
		t.Fatalf("solve: order=%v node=%q", order, victim)
	}
	dead, ok := nodes[victim]
	if !ok {
		t.Fatalf("X-Prefcover-Node %q is not one of the booted nodes %v", victim, nodeURLs)
	}
	dead.cmd.Process.Kill()
	<-dead.logDone
	dead.cmd.Wait()
	delete(nodes, victim)

	// Failover: the same solve must still succeed (served by the other
	// replica) and return the identical ordered prefix.
	order2, node2 := smokeSolve(t, gw.base)
	if node2 == victim {
		t.Fatalf("solve after kill still attributed to dead node %s", victim)
	}
	if strings.Join(order, "\x00") != strings.Join(order2, "\x00") {
		t.Fatalf("failover changed the answer: %v vs %v", order, order2)
	}

	// The prober must mark the corpse unhealthy.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := clusterSmokeState(t, gw.base)
		unhealthy := false
		for _, ns := range st.Nodes {
			if ns.URL == victim && !ns.Healthy {
				unhealthy = true
			}
		}
		if unhealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway never marked the killed node unhealthy")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Drain the corpse: the ring must rebalance onto the two survivors
	// and solves must keep working against the rebalanced ring.
	resp, err = http.Post(gw.base+"/debug/cluster?action=drain&node="+victim, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain dead node = %d", resp.StatusCode)
	}
	st := clusterSmokeState(t, gw.base)
	if len(st.RingNodes) != 2 {
		t.Fatalf("ring has %d nodes after drain, want 2: %v", len(st.RingNodes), st.RingNodes)
	}
	for _, u := range st.RingNodes {
		if u == victim {
			t.Fatalf("dead node %s still on the ring after drain", victim)
		}
	}
	order3, _ := smokeSolve(t, gw.base)
	if strings.Join(order, "\x00") != strings.Join(order3, "\x00") {
		t.Fatalf("post-drain solve changed the answer: %v vs %v", order, order3)
	}

	// The failover must be visible on /metrics.
	metricsBody := get(t, gw.base+"/metrics", "text/plain")
	validatePromText(t, metricsBody)
	for _, family := range []string{
		"prefcover_gateway_requests_total",
		"prefcover_gateway_ring_nodes",
		"prefcover_gateway_failovers_total",
	} {
		if !strings.Contains(metricsBody, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	// Everything still alive must drain cleanly: gateway first (it stops
	// probing the nodes), then the surviving nodes.
	gw.stop(t)
	for _, d := range nodes {
		d.stop(t)
	}
}

// smokeSolve runs one reference solve through the gateway and returns the
// ordered prefix plus the node that served it.
func smokeSolve(t *testing.T, gwBase string) (order []string, node string) {
	t.Helper()
	resp, err := http.Post(gwBase+"/v1/solve?variant=independent&k=3",
		"application/json", strings.NewReader(`{"graph_ref":"smoke"}`))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d (%s)", resp.StatusCode, body)
	}
	var out struct {
		Order []string `json:"order"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("solve body not JSON: %v (%s)", err, body)
	}
	return out.Order, resp.Header.Get("X-Prefcover-Node")
}

// clusterSmokeState fetches and decodes GET /debug/cluster.
func clusterSmokeState(t *testing.T, gwBase string) (st struct {
	RingNodes []string `json:"ringNodes"`
	Nodes     []struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
	} `json:"nodes"`
}) {
	t.Helper()
	resp, err := http.Get(gwBase + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/cluster = %d, %v", resp.StatusCode, err)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("cluster state not JSON: %v (%s)", err, body)
	}
	return st
}
