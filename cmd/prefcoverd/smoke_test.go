package main

// The statusz/metrics smoke test `make ci` (and `make smoke`) runs: build
// the real binary, boot it on an ephemeral port, send it one pipeline
// request, then scrape /metrics (validating the Prometheus 0.0.4 text
// format and the expected metric families) and /debug/statusz (validating
// the HTML renders those families and the RED table), and finally check
// SIGTERM drains to a clean exit. It exercises exactly the surface an
// operator's first five minutes with the daemon would.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

const smokeClickstream = `{"id":"s1","purchase":"silver","clicks":["gold"]}
{"id":"s2","purchase":"silver","clicks":["spacegray"]}
{"id":"s3","purchase":"spacegray"}
{"id":"s4","purchase":"spacegray","clicks":["silver"]}
{"id":"s5","purchase":"gold","clicks":["spacegray"]}
`

// promSampleLine matches one Prometheus text-format sample:
// name{labels} value — label values are full quoted strings (they may
// contain braces, e.g. the "/v1/graphs/{name}" endpoint label), the
// value any float rendering.
var promSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func TestStatuszMetricsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping daemon smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "prefcoverd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-slow-request-threshold", "1h")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs its resolved listen address (the kernel picked the
	// port); read it off the "prefcoverd listening" line.
	addrCh := make(chan string, 1)
	logDone := make(chan string, 1)
	go func() {
		var all strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			all.WriteString(line + "\n")
			if strings.Contains(line, "prefcoverd listening") {
				for _, tok := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(tok, "addr="); ok {
						select {
						case addrCh <- v:
						default:
						}
					}
				}
			}
		}
		logDone <- all.String()
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never logged its listen address; log so far:\n%s", <-logDone)
	}

	// Generate one real request so the RED stats and latency histograms
	// have something to show.
	resp, err := http.Post(base+"/v1/pipeline?k=2", "application/json",
		strings.NewReader(smokeClickstream))
	if err != nil {
		t.Fatalf("pipeline request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pipeline status = %d", resp.StatusCode)
	}

	// /metrics: the 0.0.4 text format, well-formed line by line, carrying
	// the families the dashboards are built on.
	metricsBody := get(t, base+"/metrics", "text/plain")
	validatePromText(t, metricsBody)
	for _, family := range []string{
		"prefcover_http_requests_total",
		"prefcover_http_request_duration_seconds",
		"prefcover_solve_stage_seconds",
		"prefcover_runtime_goroutines",
		"prefcover_process_uptime_seconds",
		"prefcover_store_graphs",
		"prefcover_jobs_queue_depth",
	} {
		if !strings.Contains(metricsBody, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(metricsBody, `prefcover_http_requests_total{endpoint="/v1/pipeline",code="200"} 1`) {
		t.Error("/metrics does not count the pipeline request")
	}

	// /debug/statusz: 200 HTML rendering the same families plus the RED
	// table row for the endpoint we just hit.
	statuszBody := get(t, base+"/debug/statusz", "text/html")
	for _, want := range []string{
		"<h1>prefcoverd</h1>",
		"prefcover_runtime_goroutines",
		"prefcover_store_graphs",
		"prefcover_jobs_queue_depth",
		"/v1/pipeline",
		"Slowest traces",
	} {
		if !strings.Contains(statuszBody, want) {
			t.Errorf("/debug/statusz missing %q", want)
		}
	}

	// /debug/profilez: the capture index renders, and one on-demand
	// goroutine capture round-trips — POST to capture, then download the
	// gzipped protobuf it reports.
	profilezBody := get(t, base+"/debug/profilez", "text/html")
	for _, want := range []string{"profilez", "capture"} {
		if !strings.Contains(profilezBody, want) {
			t.Errorf("/debug/profilez missing %q", want)
		}
	}
	resp, err = http.Post(base+"/debug/profilez?capture=goroutine", "", nil)
	if err != nil {
		t.Fatalf("profilez capture: %v", err)
	}
	capBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profilez capture status = %d: %s", resp.StatusCode, capBody)
	}
	var entry struct {
		ID    string `json:"id"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.Unmarshal(capBody, &entry); err != nil || entry.ID == "" {
		t.Fatalf("profilez capture reply not an entry: %s", capBody)
	}
	download := get(t, base+"/debug/profilez?download="+entry.ID, "application/octet-stream")
	if len(download) < 2 || download[0] != 0x1f || download[1] != 0x8b {
		t.Errorf("downloaded capture %s is not gzip (%d bytes)", entry.ID, len(download))
	}
	if !strings.Contains(get(t, base+"/debug/profilez", "text/html"), entry.ID) {
		t.Errorf("capture %s not listed in the index", entry.ID)
	}

	// SIGTERM must drain and exit 0 — the smoke test doubles as the
	// graceful-shutdown check. Drain the log to EOF before Wait: Wait
	// closes the stderr pipe, and calling it with reads outstanding would
	// race away the final shutdown lines.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var log string
	select {
	case log = <-logDone:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit: %v\nlog:\n%s", err, log)
	}
	if !strings.Contains(log, "prefcoverd stopped") {
		t.Errorf("shutdown log incomplete:\n%s", log)
	}
}

func get(t *testing.T, url, wantCT string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantCT) {
		t.Fatalf("GET %s: content type %q, want %s", url, ct, wantCT)
	}
	return string(body)
}

// validatePromText checks every line of a scrape is either a HELP/TYPE
// comment or a syntactically valid sample.
func validatePromText(t *testing.T, body string) {
	t.Helper()
	samples := 0
	for i, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Errorf("scrape line %d is not valid Prometheus text: %q", i+1, line)
			continue
		}
		samples++
	}
	if samples == 0 {
		t.Error("scrape contains no samples")
	}
}
