// Command experiments regenerates the tables and figures of the paper's
// evaluation section on synthetic stand-ins for its datasets.
//
// Usage:
//
//	experiments [-exp id] [-seed n] [-full] [-workers n] [-csv]
//
// With no -exp flag every registered experiment runs in order. -full
// switches to paper-scale workloads (minutes to hours); the default scale
// completes in seconds to a few minutes. -csv prints machine-readable
// output instead of aligned text.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prefcover/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (default: all); one of "+strings.Join(experiments.IDs(), ", "))
		seed    = flag.Int64("seed", 42, "random seed (same seed, same tables)")
		full    = flag.Bool("full", false, "run at paper scale (much slower)")
		workers = flag.Int("workers", 1, "solver worker goroutines where not swept")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Full: *full, Workers: *workers}
	if *exp == "" {
		if *csvOut {
			fmt.Fprintln(os.Stderr, "-csv requires a single -exp")
			os.Exit(2)
		}
		if err := experiments.RunAll(cfg, os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	driver, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", *exp, strings.Join(experiments.IDs(), ", "))
		os.Exit(2)
	}
	table, err := driver(cfg)
	if err != nil {
		fail(err)
	}
	if *csvOut {
		err = table.RenderCSV(os.Stdout)
	} else {
		err = table.Render(os.Stdout)
	}
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
