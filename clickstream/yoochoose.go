package clickstream

import (
	"io"

	"prefcover/internal/yoochoose"
)

// YooChooseStats summarizes a parsed RecSys-2015 dataset.
type YooChooseStats = yoochoose.Stats

// ParseYooChoose reads the RecSys 2015 Challenge CSV pair (the paper's
// public YC dataset: yoochoose-clicks.dat and yoochoose-buys.dat) into a
// session store. Either reader may be nil. Sessions purchasing several
// distinct items are split into one session per item, as the paper's model
// prescribes.
func ParseYooChoose(clicks, buys io.Reader) (*Store, YooChooseStats, error) {
	return yoochoose.Parse(clicks, buys)
}
