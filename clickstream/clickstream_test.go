package clickstream_test

import (
	"bytes"
	"strings"
	"testing"

	"prefcover/clickstream"
)

func TestFacadeRoundTrip(t *testing.T) {
	store := clickstream.NewStore([]clickstream.Session{
		{ID: "s1", Purchase: "a", Clicks: []string{"b"}},
		{ID: "s2"},
	})
	var buf bytes.Buffer
	w := clickstream.NewJSONLWriter(&buf)
	for i := range store.Sessions() {
		if err := w.Write(&store.Sessions()[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := clickstream.ReadAll(clickstream.NewJSONLReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("len = %d", back.Len())
	}
	stats, err := clickstream.CollectStats(back)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 2 || stats.Purchases != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestFacadeTSV(t *testing.T) {
	var buf bytes.Buffer
	w := clickstream.NewTSVWriter(&buf)
	if err := w.Write(&clickstream.Session{ID: "s", Purchase: "p", Clicks: []string{"c"}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	store, err := clickstream.ReadAll(clickstream.NewTSVReader(&buf))
	if err != nil || store.Len() != 1 {
		t.Fatalf("store=%v err=%v", store, err)
	}
}

func TestFacadeYooChoose(t *testing.T) {
	clicks := strings.NewReader("1,t,A,0\n1,t,B,0\n")
	buys := strings.NewReader("1,t,A,0,1\n")
	store, stats, err := clickstream.ParseYooChoose(clicks, buys)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 || stats.BuySessions != 1 {
		t.Fatalf("store=%d stats=%+v", store.Len(), stats)
	}
	if store.Sessions()[0].Purchase != "A" {
		t.Errorf("purchase = %s", store.Sessions()[0].Purchase)
	}
}
