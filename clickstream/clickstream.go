// Package clickstream is the public session-data surface of the library:
// browsing sessions (clicks plus at most one purchase) and streaming codecs
// for them. It mirrors the minimal tracking data the paper's Data
// Adaptation Engine consumes (Section 5.2): "clicks and purchases grouped
// by sessions".
package clickstream

import (
	"io"

	ics "prefcover/internal/clickstream"
)

// Session is one consumer browsing session; Purchase is empty for
// browse-only sessions.
type Session = ics.Session

// Source yields sessions one at a time; Next returns ErrEOF when the
// stream is exhausted.
type Source = ics.Source

// ErrEOF is returned by Source.Next at end of stream.
var ErrEOF = ics.ErrEOF

// Stats summarizes a clickstream (the Sessions/Purchases/Items columns of
// the paper's Table 2, plus alternative-click structure).
type Stats = ics.Stats

// CollectStats drains a source and accumulates Stats.
func CollectStats(src Source) (Stats, error) { return ics.CollectStats(src) }

// Store is an in-memory clickstream implementing Source.
type Store = ics.Store

// NewStore wraps the given sessions (taking ownership of the slice).
func NewStore(sessions []Session) *Store { return ics.NewStore(sessions) }

// ReadAll drains a source into a Store.
func ReadAll(src Source) (*Store, error) { return ics.ReadAll(src) }

// JSONLReader streams sessions from JSON-lines input (one Session document
// per line).
type JSONLReader = ics.JSONLReader

// NewJSONLReader wraps r.
func NewJSONLReader(r io.Reader) *JSONLReader { return ics.NewJSONLReader(r) }

// JSONLWriter streams sessions as JSON lines; call Flush after the last
// Write.
type JSONLWriter = ics.JSONLWriter

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return ics.NewJSONLWriter(w) }

// TSVReader streams sessions from the compact "id<TAB>purchase<TAB>clicks"
// format.
type TSVReader = ics.TSVReader

// NewTSVReader wraps r.
func NewTSVReader(r io.Reader) *TSVReader { return ics.NewTSVReader(r) }

// TSVWriter streams sessions in the TSV format; call Flush after the last
// Write.
type TSVWriter = ics.TSVWriter

// NewTSVWriter wraps w.
func NewTSVWriter(w io.Writer) *TSVWriter { return ics.NewTSVWriter(w) }
