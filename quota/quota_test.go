package quota_test

import (
	"testing"

	"prefcover"
	"prefcover/quota"
)

func TestPublicSurface(t *testing.T) {
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("tv/a", 0.4)
	b.AddLabeledNode("tv/b", 0.3)
	b.AddLabeledNode("phone/a", 0.2)
	b.AddLabeledNode("phone/b", 0.1)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	groups, names, err := quota.GroupsByLabelPrefix(g, '/')
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	res, err := quota.Solve(g, quota.Spec{
		Variant:     prefcover.Independent,
		K:           2,
		Group:       groups,
		MaxPerGroup: []int{1, 1}, // one per category
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroupCounts[0] != 1 || res.GroupCounts[1] != 1 {
		t.Errorf("group counts = %v, want one per category", res.GroupCounts)
	}
	// Unconstrained greedy would take the two TVs (0.4 + 0.3); the quota
	// forces tv/a + phone/a (0.6).
	if g.Label(res.Order[0]) != "tv/a" || g.Label(res.Order[1]) != "phone/a" {
		t.Errorf("order = [%s %s]", g.Label(res.Order[0]), g.Label(res.Order[1]))
	}
}
