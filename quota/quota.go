// Package quota is the public surface of per-group constrained curation:
// solve the Preference Cover problem with per-category (or brand,
// supplier, warehouse-zone) caps and floors alongside the global budget —
// the quota constraints that import regulations and shelf-zone planning
// impose in the paper's motivating scenarios.
package quota

import (
	"prefcover"
	iquota "prefcover/internal/quota"
)

// Spec configures Solve: variant, global budget K, per-item group
// assignment, and per-group caps (MaxPerGroup, 0 = unlimited) and optional
// floors (MinPerGroup).
type Spec = iquota.Spec

// Result is the constrained solution with per-group retention counts.
type Result = iquota.Result

// Solve runs the two-phase quota-constrained greedy (floors first, then a
// cap-respecting global fill; 1/2-approximation under the matroid
// intersection).
func Solve(g *prefcover.Graph, spec Spec) (*Result, error) {
	return iquota.Solve(g, spec)
}

// GroupsByLabelPrefix groups items by their label prefix up to the first
// sep byte — convenient when labels encode "category/item".
func GroupsByLabelPrefix(g *prefcover.Graph, sep byte) ([]int32, []string, error) {
	return iquota.GroupsByLabelPrefix(g, sep)
}
