package quota_test

import (
	"fmt"
	"log"

	"prefcover"
	"prefcover/quota"
)

// Example retains two items under a one-per-category import cap: the
// unconstrained greedy would take both TVs, the quota forces one TV and
// one phone.
func Example() {
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("tv/a", 0.4)
	b.AddLabeledNode("tv/b", 0.3)
	b.AddLabeledNode("phone/a", 0.2)
	b.AddLabeledNode("phone/b", 0.1)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	groups, names, err := quota.GroupsByLabelPrefix(g, '/')
	if err != nil {
		log.Fatal(err)
	}
	res, err := quota.Solve(g, quota.Spec{
		Variant:     prefcover.Independent,
		K:           2,
		Group:       groups,
		MaxPerGroup: []int{1, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range res.Order {
		fmt.Printf("%s (%s)\n", g.Label(v), names[groups[v]])
		_ = i
	}
	fmt.Printf("cover %.1f%%\n", 100*res.Cover)
	// Output:
	// tv/a (tv)
	// phone/a (phone)
	// cover 60.0%
}
