// Benchmarks regenerating the computational kernel of every table and
// figure in the paper's evaluation (Section 5.4). Each BenchmarkTableX /
// BenchmarkFigX corresponds to one exhibit; the cmd/experiments tool prints
// the full row/series data, these benches measure the work behind it.
//
// Run: go test -bench=. -benchmem
package prefcover_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prefcover"
	iadapt "prefcover/internal/adapt"
	"prefcover/internal/approx"
	"prefcover/internal/baseline"
	ibudgeted "prefcover/internal/budgeted"
	"prefcover/internal/cover"
	idynamic "prefcover/internal/dynamic"
	"prefcover/internal/experiments"
	igraph "prefcover/internal/graph"
	igreedy "prefcover/internal/greedy"
	ikernel "prefcover/internal/kernel"
	iprofilez "prefcover/internal/profilez"
	"prefcover/internal/retry"
	iserver "prefcover/internal/server"
	isimilarity "prefcover/internal/similarity"
	"prefcover/internal/solvecache"
	isparsify "prefcover/internal/sparsify"
	isynth "prefcover/internal/synth"
	itrace "prefcover/internal/trace"
	iyoochoose "prefcover/internal/yoochoose"
)

// benchGraph caches generated graphs across benchmark invocations of the
// same size so -benchtime reruns do not regenerate inputs.
var benchGraphs = map[string]*igraph.Graph{}

func peBenchGraph(b *testing.B, n int, variant igraph.Variant) *igraph.Graph {
	b.Helper()
	key := fmt.Sprintf("pe-%d-%d", n, variant)
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	spec, err := isynth.PresetGraphSpec(isynth.PE, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	spec.Nodes = n
	spec.Variant = variant
	g, err := isynth.GenerateGraph(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

// BenchmarkTable1ApproxRatio regenerates Table 1 (approximation-ratio
// formulas per k/n range).
func BenchmarkTable1ApproxRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := approx.Table1()
		if len(rows) != 5 {
			b.Fatal("table 1 shape")
		}
	}
}

// BenchmarkTable2DatasetBuild measures the Table 2 pipeline for one
// dataset: synthesize a YC-shaped clickstream and adapt it into a
// preference graph (sessions + purchases + items + edges are its columns).
func BenchmarkTable2DatasetBuild(b *testing.B) {
	catSpec, sesSpec, err := isynth.PresetSpecs(isynth.YC, 0.002, 42)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := isynth.NewCatalog(catSpec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sessions, err := isynth.GenerateSessions(cat, sesSpec)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := iadapt.BuildGraph(sessions, iadapt.Options{Variant: igraph.Independent}); err != nil {
			b.Fatal(err)
		}
	}
}

// fig4aInstance is the small brute-force-feasible instance of Figures
// 4a/4b.
func fig4aInstance(b *testing.B) *igraph.Graph {
	b.Helper()
	key := "fig4a"
	if g, ok := benchGraphs[key]; ok {
		return g
	}
	spec, err := isynth.PresetGraphSpec(isynth.YC, 0.02, 42)
	if err != nil {
		b.Fatal(err)
	}
	spec.CommunitySize = 16
	full, err := isynth.GenerateGraph(spec)
	if err != nil {
		b.Fatal(err)
	}
	sub, _, err := full.Induce(full.TopNodesByWeight(16))
	if err != nil {
		b.Fatal(err)
	}
	g, err := sub.Renormalize()
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[key] = g
	return g
}

// BenchmarkFig4aGreedySmall measures greedy on the Figure 4a instance.
func BenchmarkFig4aGreedySmall(b *testing.B) {
	g := fig4aInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aBruteForce measures the exact optimum on the same
// instance; together with BenchmarkFig4aGreedySmall it is Figure 4a's
// coverage pair and Figure 4b's timing pair.
func BenchmarkFig4aBruteForce(b *testing.B) {
	g := fig4aInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.BruteForce(g, igraph.Independent, 6, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4bBruteForceNormalized is Figure 4b's headline measurement:
// brute force under the Normalized variant (the variant the paper plots).
func BenchmarkFig4bBruteForceNormalized(b *testing.B) {
	g := fig4aInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := baseline.BruteForce(g, igraph.Normalized, 6, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4cCoverageQuality measures one full competitor comparison at
// k = 0.3n: greedy (lazy), TopK-W, TopK-C and Random.
func BenchmarkFig4cCoverageQuality(b *testing.B) {
	g := peBenchGraph(b, 5_000, igraph.Independent)
	k := g.NumNodes() * 3 / 10
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: k, Lazy: true}); err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.TopKW(g, igraph.Independent, k); err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.TopKC(g, igraph.Independent, k); err != nil {
			b.Fatal(err)
		}
		if _, err := baseline.Random(g, igraph.Independent, k, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4dScalability measures solver runtime across graph sizes at
// fixed k (the Figure 4d sweep), for both the paper's scan strategy and
// the lazy variant.
func BenchmarkFig4dScalability(b *testing.B) {
	for _, n := range []int{10_000, 50_000} {
		g := peBenchGraph(b, n, igraph.Independent)
		k := 500
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("lazy/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: k, Lazy: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4eParallel measures the parallel scan at several worker
// counts on a fixed graph (the Figure 4e sweep). On a single-core machine
// the speedup is flat; the bench still exercises the partitioned-argmax
// code path.
func BenchmarkFig4eParallel(b *testing.B) {
	g := peBenchGraph(b, 50_000, igraph.Independent)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: 200, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4fMinCover measures the complementary minimization problem:
// greedy threshold mode vs the TopK-W binary-search adaptation.
func BenchmarkFig4fMinCover(b *testing.B) {
	g := peBenchGraph(b, 5_000, igraph.Independent)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, Threshold: 0.7, Lazy: true})
			if err != nil {
				b.Fatal(err)
			}
			if !sol.Reached {
				b.Fatal("threshold unreachable")
			}
		}
	})
	b.Run("topkw-binsearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.MinCoverTopKW(g, igraph.Independent, 0.7); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLazyVsScan is the DESIGN.md ablation: identical
// selections, orders-of-magnitude different gain-evaluation counts.
func BenchmarkAblationLazyVsScan(b *testing.B) {
	g := peBenchGraph(b, 20_000, igraph.Independent)
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: 500}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: 500, Lazy: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stochastic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := igreedy.Solve(g, igreedy.Options{
				Variant: igraph.Independent, K: 500, StochasticEpsilon: 0.1, Seed: int64(i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIncremental compares the engine's O(d_in) incremental
// gain (the paper's I-array machinery) against recomputing the candidate's
// contribution from scratch, across one simulated greedy round.
func BenchmarkAblationIncremental(b *testing.B) {
	g := peBenchGraph(b, 20_000, igraph.Independent)
	eng := cover.NewEngine(g, igraph.Independent)
	for v := int32(0); v < 200; v++ {
		eng.Add(v * 97 % int32(g.NumNodes()))
	}
	retained := make([]bool, g.NumNodes())
	for v := int32(0); v < 200; v++ {
		retained[v*97%int32(g.NumNodes())] = true
	}
	b.Run("incremental-gain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var sum float64
			for v := int32(0); v < 2_000; v++ {
				sum += eng.Gain(v)
			}
			if sum < 0 {
				b.Fatal("impossible")
			}
		}
	})
	b.Run("from-scratch-eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Re-evaluating C(S ∪ {v}) from scratch for the same 2000
			// candidates (what dropping the I array costs).
			base := cover.Evaluate(g, igraph.Independent, retained)
			var sum float64
			for v := int32(0); v < 20; v++ { // 100x fewer candidates: it is that much slower
				retained[v] = true
				sum += cover.Evaluate(g, igraph.Independent, retained) - base
				retained[v] = false
			}
			if sum < 0 {
				b.Fatal("impossible")
			}
		}
	})
}

// BenchmarkGainKernels measures the per-variant marginal-gain kernels, the
// innermost loop of everything above — the pointer-chasing reference engine
// next to the flat kernel state — plus the solve-level strategies built on
// them (lazy on the reference engine; flat-lazy and sketch on the kernel).
func BenchmarkGainKernels(b *testing.B) {
	for _, variant := range []igraph.Variant{igraph.Independent, igraph.Normalized} {
		g := peBenchGraph(b, 20_000, variant)
		eng := cover.NewEngine(g, variant)
		st := ikernel.NewState(g, variant)
		n := int32(g.NumNodes())
		for v := int32(0); v < 500; v++ {
			eng.Add(v * 37 % n)
			st.Add(v * 37 % n)
		}
		b.Run(variant.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if eng.Gain(int32(i)%n) < 0 {
					b.Fatal("negative gain")
				}
			}
		})
		b.Run(variant.String()+"-flat", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if st.Gain(int32(i)%n) < 0 {
					b.Fatal("negative gain")
				}
			}
		})
		st.Release()
	}

	// Solve-level: the same ablation instance as BenchmarkAblationLazyVsScan
	// (20k nodes, K=500) so lazy / flat-lazy / sketch are directly
	// comparable in BENCH_solver.json.
	g := peBenchGraph(b, 20_000, igraph.Independent)
	for _, strat := range []string{igreedy.StrategyLazy, igreedy.StrategyLazyFlat, igreedy.StrategySketch} {
		b.Run(strat+"-solve", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: 500, Strategy: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// sketch-xlarge: 10x the ablation instance (200k nodes). The scan
	// strategy cannot finish a K=500 solve here in bench time; the sketch's
	// certified bounds keep the candidate pool almost entirely unevaluated.
	xg := peBenchGraph(b, 200_000, igraph.Independent)
	b.Run("sketch-xlarge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := igreedy.Solve(xg, igreedy.Options{Variant: igraph.Independent, K: 500, Strategy: igreedy.StrategySketch}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdaptGraphConstruction measures the Data Adaptation Engine on a
// preset clickstream (the offline phase of the paper's architecture).
func BenchmarkAdaptGraphConstruction(b *testing.B) {
	catSpec, sesSpec, err := isynth.PresetSpecs(isynth.PE, 0.0005, 42)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := isynth.NewCatalog(catSpec)
	if err != nil {
		b.Fatal(err)
	}
	sessions, err := isynth.GenerateSessions(cat, sesSpec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sessions.Reset()
		if _, _, err := iadapt.BuildGraph(sessions, iadapt.Options{Variant: igraph.Independent}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentDrivers smoke-measures the full driver behind each
// printable exhibit at reduced size, ensuring the harness itself stays
// cheap. Heavyweight drivers (fig4d/fig4e) are covered by their dedicated
// benches above.
func BenchmarkExperimentDrivers(b *testing.B) {
	cfg := experiments.Config{Seed: 42}
	for _, id := range []string{"table1", "fig4a", "fig4b"} {
		driver, ok := experiments.Lookup(id)
		if !ok {
			b.Fatalf("missing driver %s", id)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := driver(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtBudgeted measures the revenue/storage extension: the
// three-strategy budgeted solve on a mid-size graph.
func BenchmarkExtBudgeted(b *testing.B) {
	g := peBenchGraph(b, 5_000, igraph.Independent)
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(7))
	revenue := make([]float64, n)
	costs := make([]float64, n)
	for i := 0; i < n; i++ {
		revenue[i] = 2 + 20*rng.Float64()
		costs[i] = 0.5 + 2*rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ibudgeted.Solve(g, ibudgeted.Spec{
			Variant: igraph.Independent, Revenue: revenue, Cost: costs, Budget: 250,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtDynamic measures incremental maintenance: per-edit tracker
// cost and one local exchange, versus a full lazy re-solve.
func BenchmarkExtDynamic(b *testing.B) {
	g := peBenchGraph(b, 10_000, igraph.Independent)
	sol, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: 500, Lazy: true})
	if err != nil {
		b.Fatal(err)
	}
	m := idynamic.FromGraph(g)
	tr, err := idynamic.NewTracker(m, igraph.Independent, sol.Order)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.Run("set-weight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			id := int32(rng.Intn(g.NumNodes()))
			if err := tr.SetWeight(id, rng.Float64()*1e-4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("best-exchange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.BestExchange(1e-9)
		}
	})
	b.Run("full-resolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tr.Resolve(500, igreedy.Options{Lazy: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSparsifyPrune measures the preprocessing prune on a mid-size
// graph.
func BenchmarkSparsifyPrune(b *testing.B) {
	g := peBenchGraph(b, 50_000, igraph.Independent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isparsify.Prune(g, isparsify.Options{MinWeight: 0.1, MaxOutDegree: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkYooChooseParse measures the RecSys-2015 CSV codec.
func BenchmarkYooChooseParse(b *testing.B) {
	var clicks, buys strings.Builder
	rng := rand.New(rand.NewSource(3))
	for s := 0; s < 5_000; s++ {
		for c := 0; c < 3; c++ {
			fmt.Fprintf(&clicks, "%d,2014-04-07T10:51:09.277Z,%d,0\n", s, rng.Intn(2000))
		}
		if s%20 == 0 {
			fmt.Fprintf(&buys, "%d,2014-04-07T10:58:00.306Z,%d,1000,1\n", s, rng.Intn(2000))
		}
	}
	cs, bs := clicks.String(), buys.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := iyoochoose.Parse(strings.NewReader(cs), strings.NewReader(bs)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarityIndex measures cold-start index construction and
// top-k queries over a synthetic catalog's item texts.
func BenchmarkSimilarityIndex(b *testing.B) {
	cat, err := isynth.NewCatalog(isynth.CatalogSpec{Items: 5_000, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	docs := make([]isimilarity.Doc, cat.Len())
	for i := range docs {
		docs[i] = isimilarity.Doc{Label: cat.Item(int32(i)).Label, Text: cat.ItemText(int32(i))}
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := isimilarity.BuildIndex(docs, isimilarity.IndexOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ix, err := isimilarity.BuildIndex(docs, isimilarity.IndexOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("topk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.TopK(docs[i%len(docs)].Label, 5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicSolve measures the public API end to end on the Figure 1
// fixture-sized problem, the "hello world" cost of the library.
func BenchmarkPublicSolve(b *testing.B) {
	bld := prefcover.NewBuilder(5, 6)
	bld.AddLabeledNode("A", 0.33)
	bld.AddLabeledNode("B", 0.22)
	bld.AddLabeledNode("C", 0.22)
	bld.AddLabeledNode("D", 0.06)
	bld.AddLabeledNode("E", 0.17)
	bld.AddLabeledEdge("A", "B", 2.0/3.0)
	bld.AddLabeledEdge("A", "C", 0.3)
	bld.AddLabeledEdge("B", "C", 0.8)
	bld.AddLabeledEdge("C", "B", 1.0)
	bld.AddLabeledEdge("D", "C", 0.5)
	bld.AddLabeledEdge("E", "D", 0.9)
	g, err := bld.Build(prefcover.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Cover < 0.87 {
			b.Fatal("wrong cover")
		}
	}
}

// BenchmarkSolveCacheHitVsMiss quantifies what the prefcoverd solve cache
// buys on a YC-preset graph: "miss" is the cold path (greedy solve plus
// packaging the result for the cache), "hit" answers a smaller budget from
// the cached prefix via the ordered-prefix property (§3.2) with zero
// solver work. The hit path is expected to be orders of magnitude faster.
func BenchmarkSolveCacheHitVsMiss(b *testing.B) {
	key := "yc-cache"
	g, ok := benchGraphs[key]
	if !ok {
		spec, err := isynth.PresetGraphSpec(isynth.YC, 0.02, 42)
		if err != nil {
			b.Fatal(err)
		}
		g, err = isynth.GenerateGraph(spec)
		if err != nil {
			b.Fatal(err)
		}
		benchGraphs[key] = g
	}
	kMax := 200
	if kMax > g.NumNodes() {
		kMax = g.NumNodes()
	}
	cacheKey := solvecache.Key{
		GraphHash: "bench", Variant: igraph.Independent, Strategy: igreedy.StrategyLazy,
	}
	solveMax := func() *igreedy.Solution {
		sol, err := igreedy.Solve(g, igreedy.Options{Variant: igraph.Independent, K: kMax, Lazy: true})
		if err != nil {
			b.Fatal(err)
		}
		return sol
	}

	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := solvecache.New(solvecache.Options{})
			c.Store(cacheKey, solvecache.NewResult(solveMax(), g.NumNodes(), 0))
		}
	})
	b.Run("hit", func(b *testing.B) {
		c := solvecache.New(solvecache.Options{})
		c.Store(cacheKey, solvecache.NewResult(solveMax(), g.NumNodes(), 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hit, ok := c.Lookup(cacheKey, solvecache.Query{K: 1 + i%kMax})
			if !ok || len(hit.Order) == 0 {
				b.Fatal("warm lookup missed")
			}
		}
	})
}

// BenchmarkRemoteSolveWithRetries measures the remote solve path end to
// end over HTTP — prefcoverd answering a warm cached reference solve —
// and what the retry wrapper costs when nothing fails: "bare" issues the
// request with a plain client, "retrying" sends the identical request
// through the jittered-backoff policy `prefcover remote` uses. Fault-free,
// the two must stay within a few percent of each other: the resilience
// layer is supposed to be free until something actually breaks.
func BenchmarkRemoteSolveWithRetries(b *testing.B) {
	srv, err := iserver.NewWithConfig(iserver.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := peBenchGraph(b, 2000, igraph.Independent)
	var buf bytes.Buffer
	if err := prefcover.WriteGraphJSON(&buf, g); err != nil {
		b.Fatal(err)
	}
	put, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs/bench", bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	put.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(put); err != nil || resp.StatusCode != http.StatusCreated {
		b.Fatalf("upload: %v (%+v)", err, resp)
	} else {
		resp.Body.Close()
	}

	solveURL := ts.URL + "/v1/solve?variant=independent&k=50"
	payload := []byte(`{"graph_ref":"bench"}`)
	client := &http.Client{}
	call := func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, solveURL, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return retry.TransportError(err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return retry.TransportError(err)
		}
		if resp.StatusCode != http.StatusOK {
			return retry.HTTPStatusError(resp.StatusCode, resp.Header, fmt.Errorf("solve: %s", resp.Status))
		}
		return nil
	}
	// Warm the solve cache so both variants measure the serving path, not
	// one cold greedy run.
	if err := call(context.Background()); err != nil {
		b.Fatal(err)
	}

	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := call(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("retrying", func(b *testing.B) {
		policy := retry.Policy{Jitter: 0.5}
		for i := 0; i < b.N; i++ {
			if err := policy.Do(context.Background(), call); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracePropagationOverhead isolates what distributed tracing
// costs per request on the wire path: "inject" renders a span's W3C
// traceparent and sets it on a header (the client side of every attempt),
// "extract" parses the header back and opens the continuing request root
// span (the middleware side), and "roundtrip" is both plus ending the
// span into the flight-recorder ring. These are nanosecond-scale
// operations; the snapshot keeps them honest so the header codec never
// silently grows allocations.
func BenchmarkTracePropagationOverhead(b *testing.B) {
	tracer := itrace.New(64)
	origin := itrace.NewSpanContext()
	span := tracer.RootContext("client", origin)
	header := span.Context().Traceparent()
	if header == "" {
		b.Fatal("no traceparent to propagate")
	}

	b.Run("inject", func(b *testing.B) {
		b.ReportAllocs()
		h := make(http.Header, 4)
		for i := 0; i < b.N; i++ {
			h.Set(itrace.TraceparentHeader, span.Context().Traceparent())
		}
	})
	b.Run("extract", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sc, err := itrace.ParseTraceparent(header)
			if err != nil || !sc.Sampled {
				b.Fatalf("parse: %v (%+v)", err, sc)
			}
		}
	})
	b.Run("roundtrip", func(b *testing.B) {
		b.ReportAllocs()
		h := make(http.Header, 4)
		for i := 0; i < b.N; i++ {
			h.Set(itrace.TraceparentHeader, span.Context().Traceparent())
			sc, err := itrace.ParseTraceparent(h.Get(itrace.TraceparentHeader))
			if err != nil {
				b.Fatal(err)
			}
			req := tracer.RootContext("request", sc)
			req.End()
		}
	})
}

// BenchmarkProfileLabelOverhead prices what per-solve profiling
// attribution costs when no profiler is capturing — the always-on
// configuration. "bare" is the plain solver call; "labeled" wraps it in
// profilez.Do exactly as the server's solve path does (label set built,
// goroutine labels installed and inherited); "accounted" adds the
// TakeSample/Since resource bracket. With capture off the label write is
// a pointer swap on the goroutine, so all three must sit within noise of
// each other — this snapshot is the regression gate for that claim.
func BenchmarkProfileLabelOverhead(b *testing.B) {
	g := peBenchGraph(b, 2000, igraph.Independent)
	opts := igreedy.Options{Variant: igraph.Independent, K: 16, Lazy: true}
	labels := iprofilez.SolveLabels{
		Graph:    "bench-graph",
		Strategy: "lazy",
		Endpoint: "/v1/solve",
		K:        opts.K,
	}
	ctx := context.Background()

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := igreedy.Solve(g, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("labeled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			iprofilez.Do(ctx, labels, func(context.Context) {
				_, err = igreedy.Solve(g, opts)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("accounted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			before := iprofilez.TakeSample()
			var err error
			iprofilez.Do(ctx, labels, func(context.Context) {
				_, err = igreedy.Solve(g, opts)
			})
			usage := iprofilez.Since(before)
			if err != nil {
				b.Fatal(err)
			}
			if usage.WallNanos <= 0 {
				b.Fatal("no wall time measured")
			}
		}
	})
}
