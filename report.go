package prefcover

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Report renders a solved instance the way the paper's system (Figure 2)
// presents it: the ordered retained list with marginal gains, the achieved
// cover, and the per-item coverage of the most-affected non-retained items.
type Report struct {
	Variant  Variant
	K        int
	Cover    float64
	Retained []ReportItem
	// Affected lists non-retained items ordered by lost request mass
	// (weight times uncovered fraction), the items a merchandiser reviews
	// before committing to the reduction.
	Affected []ReportItem
}

// ReportItem is one row of a Report.
type ReportItem struct {
	Label    string
	Weight   float64
	Gain     float64 // marginal gain (retained items only)
	Coverage float64 // probability a request for the item is matched
}

// NewReport assembles a Report from a solved instance. maxAffected bounds
// the Affected list (0 means all non-retained items).
func NewReport(g *Graph, variant Variant, sol *Solution, maxAffected int) *Report {
	r := &Report{
		Variant: variant,
		K:       len(sol.Order),
		Cover:   sol.Cover,
	}
	retained := sol.Set(g.NumNodes())
	for i, v := range sol.Order {
		r.Retained = append(r.Retained, ReportItem{
			Label:    g.Label(v),
			Weight:   g.NodeWeight(v),
			Gain:     sol.Gains[i],
			Coverage: 1,
		})
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if retained[v] {
			continue
		}
		r.Affected = append(r.Affected, ReportItem{
			Label:    g.Label(v),
			Weight:   g.NodeWeight(v),
			Coverage: sol.Coverage[v],
		})
	}
	sort.Slice(r.Affected, func(i, j int) bool {
		li := r.Affected[i].Weight * (1 - r.Affected[i].Coverage)
		lj := r.Affected[j].Weight * (1 - r.Affected[j].Coverage)
		if li != lj {
			return li > lj
		}
		return r.Affected[i].Label < r.Affected[j].Label
	})
	if maxAffected > 0 && len(r.Affected) > maxAffected {
		r.Affected = r.Affected[:maxAffected]
	}
	return r
}

// WriteTo renders the report as aligned text. It implements
// io.WriterTo.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	tw := tabwriter.NewWriter(cw, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "variant: %s\tretained: %d\tcover: %.2f%%\n", r.Variant, r.K, 100*r.Cover)
	fmt.Fprintln(tw, "\nretained items (selection order)")
	fmt.Fprintln(tw, "  #\titem\tweight\tmarginal gain")
	for i, it := range r.Retained {
		fmt.Fprintf(tw, "  %d\t%s\t%.4f\t%.4f\n", i+1, it.Label, it.Weight, it.Gain)
	}
	if len(r.Affected) > 0 {
		fmt.Fprintln(tw, "\nmost affected non-retained items")
		fmt.Fprintln(tw, "  item\tweight\tcoverage\tlost demand")
		for _, it := range r.Affected {
			fmt.Fprintf(tw, "  %s\t%.4f\t%.1f%%\t%.4f\n", it.Label, it.Weight, 100*it.Coverage, it.Weight*(1-it.Coverage))
		}
	}
	if err := tw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	if err != nil && cw.err == nil {
		cw.err = err
	}
	return n, err
}
