package prefcover_test

import (
	"fmt"
	"log"
	"os"

	"prefcover"
)

// ExampleSolve reproduces the paper's running example: of five items, keep
// two. The best sellers A and B satisfy 77% of requests; the Preference
// Cover solution {B, D} satisfies 87.3%.
func ExampleSolve() {
	b := prefcover.NewBuilder(5, 6)
	b.AddLabeledNode("A", 0.33)
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06)
	b.AddLabeledNode("E", 0.17)
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	sol, err := prefcover.Solve(g, prefcover.Options{
		Variant: prefcover.Independent,
		K:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range sol.Order {
		fmt.Printf("%d. %s (gain %.3f)\n", i+1, g.Label(v), sol.Gains[i])
	}
	fmt.Printf("cover: %.1f%%\n", 100*sol.Cover)
	// Output:
	// 1. B (gain 0.660)
	// 2. D (gain 0.213)
	// cover: 87.3%
}

// ExampleMinCover solves the complementary minimization problem: the
// smallest retained set whose cover reaches a target.
func ExampleMinCover() {
	b := prefcover.NewBuilder(3, 1)
	b.AddLabeledNode("umbrella-black", 0.5)
	b.AddLabeledNode("umbrella-navy", 0.3)
	b.AddLabeledNode("umbrella-red", 0.2)
	// Navy buyers settle for black 90% of the time.
	b.AddLabeledEdge("umbrella-navy", "umbrella-black", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	sol, err := prefcover.MinCover(g, prefcover.Normalized, 0.75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retain %d item(s) for %.0f%% coverage: %s\n",
		len(sol.Order), 100*sol.Cover, g.Label(sol.Order[0]))
	// Output:
	// retain 1 item(s) for 77% coverage: umbrella-black
}

// ExampleNewReport renders the merchandiser-facing report of a solved
// instance (the right-hand panel of the paper's Figure 2).
func ExampleNewReport() {
	b := prefcover.NewBuilder(3, 1)
	b.AddLabeledNode("x", 0.6)
	b.AddLabeledNode("y", 0.3)
	b.AddLabeledNode("z", 0.1)
	b.AddLabeledEdge("y", "x", 0.5)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 1})
	if err != nil {
		log.Fatal(err)
	}
	report := prefcover.NewReport(g, prefcover.Independent, sol, 0)
	if _, err := report.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
	// Output:
	// variant: independent  retained: 1  cover: 75.00%
	//
	// retained items (selection order)
	//   #  item  weight  marginal gain
	//   1  x     0.6000  0.7500
	//
	// most affected non-retained items
	//   item  weight  coverage  lost demand
	//   y     0.3000  50.0%     0.1500
	//   z     0.1000  0.0%      0.1000
}
