package prefcover_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"prefcover"
)

func figure1(t testing.TB) *prefcover.Graph {
	t.Helper()
	b := prefcover.NewBuilder(5, 6)
	b.AddLabeledNode("A", 0.33)
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06)
	b.AddLabeledNode("E", 0.17)
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicSolveFigure1(t *testing.T) {
	g := figure1(t)
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cover-0.873) > 1e-9 {
		t.Errorf("cover = %g, want 0.873", sol.Cover)
	}
	if g.Label(sol.Order[0]) != "B" || g.Label(sol.Order[1]) != "D" {
		t.Errorf("order = [%s %s], want [B D]", g.Label(sol.Order[0]), g.Label(sol.Order[1]))
	}
}

func TestPublicMinCover(t *testing.T) {
	g := figure1(t)
	sol, err := prefcover.MinCover(g, prefcover.Normalized, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reached || len(sol.Order) != 2 {
		t.Errorf("reached=%v size=%d", sol.Reached, len(sol.Order))
	}
}

func TestPublicEvaluateLabels(t *testing.T) {
	g := figure1(t)
	cover, err := prefcover.EvaluateLabels(g, prefcover.Independent, []string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cover-0.77) > 1e-9 {
		t.Errorf("C({A,B}) = %g, want 0.77", cover)
	}
	_, err = prefcover.EvaluateLabels(g, prefcover.Independent, []string{"A", "nope"})
	var unknown *prefcover.UnknownItemError
	if err == nil {
		t.Fatal("want unknown-item error")
	}
	if !errorsAs(err, &unknown) || unknown.Label != "nope" {
		t.Errorf("error = %v, want UnknownItemError{nope}", err)
	}
}

// errorsAs avoids importing errors for one call in a test helper.
func errorsAs(err error, target *(*prefcover.UnknownItemError)) bool {
	u, ok := err.(*prefcover.UnknownItemError)
	if ok {
		*target = u
	}
	return ok
}

func TestPublicBaselines(t *testing.T) {
	g := figure1(t)
	set, cover, err := prefcover.SolveBaseline(g, prefcover.Independent, 2, prefcover.BaselineTopKW)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || math.Abs(cover-0.77) > 1e-9 {
		t.Errorf("TopKW = %v %g", set, cover)
	}
	_, _, err = prefcover.SolveBaseline(g, prefcover.Independent, 2, prefcover.BaselineTopKC)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicVariantParse(t *testing.T) {
	v, err := prefcover.ParseVariant("normalized")
	if err != nil || v != prefcover.Normalized {
		t.Errorf("ParseVariant = %v, %v", v, err)
	}
	if _, err := prefcover.ParseVariant("x"); err == nil {
		t.Error("want error")
	}
}

func TestPublicStats(t *testing.T) {
	g := figure1(t)
	s := prefcover.ComputeStats(g)
	if s.Nodes != 5 || s.Edges != 6 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPublicCodecs(t *testing.T) {
	g := figure1(t)
	var tsv, js, bin bytes.Buffer
	if err := prefcover.WriteGraphTSV(&tsv, g); err != nil {
		t.Fatal(err)
	}
	if err := prefcover.WriteGraphJSON(&js, g); err != nil {
		t.Fatal(err)
	}
	if err := prefcover.WriteGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	for name, read := range map[string]func() (*prefcover.Graph, error){
		"tsv":    func() (*prefcover.Graph, error) { return prefcover.ReadGraphTSV(&tsv, prefcover.BuildOptions{}) },
		"json":   func() (*prefcover.Graph, error) { return prefcover.ReadGraphJSON(&js, prefcover.BuildOptions{}) },
		"binary": func() (*prefcover.Graph, error) { return prefcover.ReadGraphBinary(&bin) },
	} {
		back, err := read()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.NumNodes() != 5 || back.NumEdges() != 6 {
			t.Errorf("%s: round trip lost data", name)
		}
	}
}

func TestReportRendering(t *testing.T) {
	g := figure1(t)
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := prefcover.NewReport(g, prefcover.Independent, sol, 2)
	if len(rep.Retained) != 2 {
		t.Fatalf("retained = %d", len(rep.Retained))
	}
	if len(rep.Affected) != 2 {
		t.Fatalf("affected = %d (maxAffected)", len(rep.Affected))
	}
	// A loses the most demand (0.33 * 1/3 = 0.11): must sort first.
	if rep.Affected[0].Label != "A" {
		t.Errorf("first affected = %s, want A", rep.Affected[0].Label)
	}
	var buf bytes.Buffer
	n, err := rep.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo count = %d, buffer = %d", n, buf.Len())
	}
	out := buf.String()
	for _, want := range []string{"cover: 87.30%", "retained items", "B", "D", "most affected"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// failAfter is a writer failing after n bytes, for the error path of
// Report.WriteTo.
type failAfter struct {
	n       int
	written int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		allowed := f.n - f.written
		if allowed < 0 {
			allowed = 0
		}
		f.written += allowed
		return allowed, bytes.ErrTooLarge
	}
	f.written += len(p)
	return len(p), nil
}

func TestReportWriteToPropagatesErrors(t *testing.T) {
	g := figure1(t)
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := prefcover.NewReport(g, prefcover.Independent, sol, 0)
	if _, err := rep.WriteTo(&failAfter{n: 10}); err == nil {
		t.Error("failing writer should surface an error")
	}
}

func TestReportAllAffected(t *testing.T) {
	g := figure1(t)
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := prefcover.NewReport(g, prefcover.Independent, sol, 0)
	if len(rep.Affected) != 3 {
		t.Errorf("affected = %d, want all 3", len(rep.Affected))
	}
}

func TestPublicSimulate(t *testing.T) {
	g := figure1(t)
	b, _ := g.Lookup("B")
	d, _ := g.Lookup("D")
	est, err := prefcover.Simulate(g, prefcover.Independent, []int32{b, d}, 100_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Predicted-0.873) > 1e-9 {
		t.Errorf("predicted = %g", est.Predicted)
	}
	if !est.Within(4) {
		t.Errorf("simulation disagrees: %s", est)
	}
}

func TestPublicSparsify(t *testing.T) {
	g := figure1(t)
	res, err := prefcover.Sparsify(g, prefcover.SparsifyOptions{MinWeight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesAfter >= res.EdgesBefore {
		t.Errorf("nothing pruned: %d -> %d", res.EdgesBefore, res.EdgesAfter)
	}
	sol, err := prefcover.Solve(res.Graph, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := prefcover.Evaluate(g, prefcover.Independent, sol.Order)
	if err != nil {
		t.Fatal(err)
	}
	if 0.873-orig > res.LossBound+1e-9 {
		t.Errorf("loss %g exceeds bound %g", 0.873-orig, res.LossBound)
	}
}

func TestPublicPerItemCoverage(t *testing.T) {
	g := figure1(t)
	b, _ := g.Lookup("B")
	d, _ := g.Lookup("D")
	cov, err := prefcover.PerItemCoverage(g, prefcover.Independent, []int32{b, d})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Lookup("A")
	if math.Abs(cov[a]-2.0/3.0) > 1e-9 {
		t.Errorf("coverage(A) = %g", cov[a])
	}
}
