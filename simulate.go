package prefcover

import "prefcover/internal/replay"

// SimulationEstimate is the outcome of a Monte Carlo replay: the empirical
// purchase rate with its standard error, next to the analytic prediction.
type SimulationEstimate = replay.Estimate

// Simulate replays `requests` consumer requests against the retained set
// under the variant's exact acceptance semantics and returns the empirical
// purchase rate alongside the analytic C(S). Use it to sanity-check a
// proposed reduction offline, or to report a confidence interval to
// stakeholders who distrust closed-form numbers.
func Simulate(g *Graph, variant Variant, set []int32, requests int, seed int64) (SimulationEstimate, error) {
	predicted, err := Evaluate(g, variant, set)
	if err != nil {
		return SimulationEstimate{}, err
	}
	return replay.RunSet(g, set, replay.Spec{
		Variant:  variant,
		Requests: requests,
		Seed:     seed,
	}, predicted)
}
