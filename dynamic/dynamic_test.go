package dynamic_test

import (
	"math"
	"testing"

	"prefcover"
	"prefcover/dynamic"
)

func figure1(t *testing.T) *prefcover.Graph {
	t.Helper()
	b := prefcover.NewBuilder(5, 6)
	b.AddLabeledNode("A", 0.33)
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06)
	b.AddLabeledNode("E", 0.17)
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPublicSurface exercises the documented flow: solve, track, drift,
// repair, re-solve.
func TestPublicSurface(t *testing.T) {
	g := figure1(t)
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, tracker, err := dynamic.TrackSolution(g, prefcover.Independent, sol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tracker.Cover()-sol.Cover) > 1e-9 {
		t.Fatalf("tracker cover %g != solution %g", tracker.Cover(), sol.Cover)
	}
	// Demand shifts: E crashes, A spikes.
	e, _ := m.Lookup("E")
	a, _ := m.Lookup("A")
	if err := tracker.SetWeight(e, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tracker.SetWeight(a, 0.49); err != nil {
		t.Fatal(err)
	}
	if tracker.Drift() == 0 {
		t.Error("drift should register")
	}
	if ex, ok := tracker.BestExchange(1e-9); ok {
		before := tracker.Cover()
		if err := tracker.ApplyExchange(ex); err != nil {
			t.Fatal(err)
		}
		if tracker.Cover() <= before {
			t.Error("exchange should improve")
		}
	}
	res, err := tracker.Resolve(2, prefcover.Options{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RetainedIDs) != 2 {
		t.Fatalf("resolve retained %d", len(res.RetainedIDs))
	}
	if tracker.Drift() != 0 {
		t.Error("resolve resets drift")
	}
}

func TestNewMutableGraphFromScratch(t *testing.T) {
	m := dynamic.NewMutableGraph()
	a, err := m.AddItem("a", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddItem("b", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetEdge(a, b, 0.5); err != nil {
		t.Fatal(err)
	}
	tr, err := dynamic.NewTracker(m, prefcover.Normalized, []int32{b})
	if err != nil {
		t.Fatal(err)
	}
	// b covers itself (0.3) plus half of a's requests (0.35).
	if math.Abs(tr.Cover()-0.65) > 1e-9 {
		t.Errorf("cover = %g, want 0.65", tr.Cover())
	}
}
