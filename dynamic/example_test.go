package dynamic_test

import (
	"fmt"

	"prefcover"
	"prefcover/dynamic"
)

// Example_editScript walks the incremental-maintenance loop end to end: a
// catalog is solved once, the retained set's cover is then tracked exactly
// through a script of catalog edits (demand shifts, a substitute-edge
// change, a new product, a discontinued one), a local exchange repairs the
// set when drift makes it profitable, and a full re-solve resets the
// drift signal.
func Example_editScript() {
	// The paper's Figure-1 catalog: five products, substitution edges.
	b := prefcover.NewBuilder(5, 6)
	b.AddLabeledNode("A", 0.33)
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06)
	b.AddLabeledNode("E", 0.17)
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		panic(err)
	}

	// Solve once for a retained set of 2, then start tracking it.
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		panic(err)
	}
	m, tr, err := dynamic.TrackSolution(g, prefcover.Independent, sol)
	if err != nil {
		panic(err)
	}
	fmt.Printf("retained %d items, cover %.4f\n", len(tr.RetainedSet()), tr.Cover())

	// The edit script. Every step keeps the tracked cover exact — no
	// approximation accumulates — while drift records how much the
	// landscape has moved since the last solve.
	a, _ := m.Lookup("A")
	e, _ := m.Lookup("E")
	steps := []struct {
		desc string
		edit func() error
	}{
		{"demand shift: E fades, A spikes", func() error {
			if err := tr.SetWeight(e, 0.01); err != nil {
				return err
			}
			return tr.SetWeight(a, 0.49)
		}},
		{"substitution change: E->D strengthens", func() error {
			d, _ := m.Lookup("D")
			return tr.SetEdge(e, d, 0.99)
		}},
		{"new product F absorbs demand from A", func() error {
			f, err := tr.AddItem("F", 0.10)
			if err != nil {
				return err
			}
			return tr.SetEdge(a, f, 0.4)
		}},
		{"product D is discontinued", func() error {
			d, _ := m.Lookup("D")
			return tr.RemoveItem(d)
		}},
	}
	for _, s := range steps {
		if err := s.edit(); err != nil {
			panic(err)
		}
		fmt.Printf("%-42s cover %.4f drift %.4f\n", s.desc, tr.Cover(), tr.Drift())
	}

	// Drift has accumulated; try a one-swap local repair before paying for
	// a full re-solve. (Here the heuristic's one candidate pair does not
	// improve the set, so the tracker escalates.)
	if ex, ok := tr.BestExchange(1e-9); ok {
		before := tr.Cover()
		if err := tr.ApplyExchange(ex); err != nil {
			panic(err)
		}
		fmt.Printf("exchange %s -> %s: cover %.4f (+%.4f)\n",
			m.Label(ex.Out), m.Label(ex.In), tr.Cover(), tr.Cover()-before)
	} else {
		fmt.Println("no profitable single swap; re-solving")
	}

	// A full re-solve re-optimizes from scratch and resets drift.
	res, err := tr.Resolve(2, prefcover.Options{Lazy: true})
	if err != nil {
		panic(err)
	}
	labels := make([]string, len(res.RetainedIDs))
	for i, id := range res.RetainedIDs {
		labels[i] = m.Label(id)
	}
	fmt.Printf("re-solve retains %v, cover %.4f, drift %.4f\n", labels, tr.Cover(), tr.Drift())

	// Output:
	// retained 2 items, cover 0.8730
	// demand shift: E fades, A spikes            cover 0.8357 drift 0.2507
	// substitution change: E->D strengthens      cover 0.8366 drift 0.2516
	// new product F absorbs demand from A        cover 0.8366 drift 0.2516
	// product D is discontinued                  cover 0.7667 drift 0.3215
	// no profitable single swap; re-solving
	// re-solve retains [B F], cover 0.9320, drift 0.0000
}
