// Package dynamic is the public surface of incremental solution
// maintenance (the future-work direction the paper's conclusion names):
// track the cover of a retained set exactly while the catalog changes,
// accumulate a drift signal, repair locally with exchanges, and re-solve
// when drift warrants it.
package dynamic

import (
	"prefcover"
	idynamic "prefcover/internal/dynamic"
)

// MutableGraph is an editable preference graph; freeze it to solve.
type MutableGraph = idynamic.MutableGraph

// NewMutableGraph returns an empty mutable graph.
func NewMutableGraph() *MutableGraph { return idynamic.NewMutableGraph() }

// FromGraph copies an immutable graph into mutable form.
func FromGraph(g *prefcover.Graph) *MutableGraph { return idynamic.FromGraph(g) }

// Tracker maintains the exact cover of a retained set under mutations.
type Tracker = idynamic.Tracker

// Exchange is a proposed (release, retain) local repair step.
type Exchange = idynamic.Exchange

// ResolveResult is the outcome of a full re-solve.
type ResolveResult = idynamic.ResolveResult

// NewTracker starts tracking the given retained set (mutable ids) over m.
func NewTracker(m *MutableGraph, variant prefcover.Variant, retained []int32) (*Tracker, error) {
	return idynamic.NewTracker(m, variant, retained)
}

// TrackSolution is a convenience that freezes nothing: it starts a tracker
// on a mutable copy of g retaining the solution's items, returning both.
func TrackSolution(g *prefcover.Graph, variant prefcover.Variant, sol *prefcover.Solution) (*MutableGraph, *Tracker, error) {
	m := idynamic.FromGraph(g)
	tr, err := idynamic.NewTracker(m, variant, sol.Order)
	if err != nil {
		return nil, nil, err
	}
	return m, tr, nil
}
