// Express delivery: stock a same-day-delivery warehouse (the paper's first
// motivating scenario). A warehouse can hold only a small fraction of the
// electronics catalog; pick the items that keep the most purchases
// possible, counting consumers' willingness to accept alternatives.
//
// The example runs the complete Figure 2 flow on a synthetic
// electronics-domain clickstream: simulate sessions, let the adaptation
// engine recommend the variant, solve at several warehouse capacities, and
// compare against the naive best-sellers plan.
//
// Run: go run ./examples/expressdelivery
package main

import (
	"fmt"
	"log"

	"prefcover"
	"prefcover/adapt"
	"prefcover/synth"
)

func main() {
	// A PE-shaped (electronics) catalog, scaled to demo size.
	catSpec, sesSpec, err := synth.PresetSpecs(synth.PE, 0.001, 2026)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d purchase sessions over %d items\n", sessions.Len(), cat.Len())

	// Adapt with variant auto-selection (electronics data fits the
	// Independent variant: consumers weigh several alternatives).
	pipeline := &adapt.Pipeline{K: 1, Lazy: true}
	res, err := pipeline.Run(sessions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptation: %d items, %d edges; recommended variant %s (confident=%v)\n\n",
		res.Graph.NumNodes(), res.Graph.NumEdges(), res.Variant, res.VariantConfident)

	g := res.Graph
	// One full greedy ordering serves every capacity (the retained list is
	// incremental), so sweep warehouse sizes from a single solve.
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: res.Variant, K: g.NumNodes(), Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	prefix := sol.PrefixCover()

	fmt.Println("warehouse capacity sweep (greedy vs naive best-sellers):")
	fmt.Println("  capacity  greedy cover  top-sellers cover  saved sales")
	for _, fracPermille := range []int{10, 25, 50, 100, 200} {
		k := g.NumNodes() * fracPermille / 1000
		if k < 1 {
			k = 1
		}
		_, naive, err := prefcover.SolveBaseline(g, res.Variant, k, prefcover.BaselineTopKW)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.1f%%    %6.2f%%       %6.2f%%            +%.2f pp\n",
			float64(fracPermille)/10, 100*prefix[k], 100*naive, 100*(prefix[k]-naive))
	}
}
