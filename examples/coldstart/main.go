// Cold start: a newly listed item has demand (preorders, search interest)
// but no click history, so the behavioral preference graph gives it no
// alternatives — if it is not retained, the model assumes its demand is
// simply lost. The similarity index (the paper's footnote-4 direction)
// proposes alternatives from item text so the solver can reason about the
// new item like any other.
//
// Run: go run ./examples/coldstart
package main

import (
	"fmt"
	"log"

	"prefcover"
	"prefcover/adapt"
)

func main() {
	// Behavioral graph from historical clickstreams: the established
	// coffee machines cover each other; "brewmaster-pro-2" launched last
	// week and has demand but no outgoing edges yet.
	b := prefcover.NewBuilder(0, 0)
	b.AddLabeledNode("brewmaster-pro", 0.35)
	b.AddLabeledNode("brewmaster-lite", 0.25)
	b.AddLabeledNode("espressino", 0.20)
	b.AddLabeledNode("brewmaster-pro-2", 0.20) // the new item
	b.AddLabeledEdge("brewmaster-pro", "brewmaster-lite", 0.5)
	b.AddLabeledEdge("brewmaster-lite", "brewmaster-pro", 0.7)
	b.AddLabeledEdge("espressino", "brewmaster-pro", 0.3)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	solve := func(graph *prefcover.Graph, tag string) {
		sol, err := prefcover.Solve(graph, prefcover.Options{Variant: prefcover.Independent, K: 2})
		if err != nil {
			log.Fatal(err)
		}
		labels := make([]string, len(sol.Order))
		for i, v := range sol.Order {
			labels[i] = graph.Label(v)
		}
		fmt.Printf("%-11s keep %v -> %.1f%% of demand covered\n", tag+":", labels, 100*sol.Cover)
	}

	// Without augmentation the new item looks uncoverable, so the solver
	// must burn a slot on it.
	solve(g, "behavioral")

	// Item texts reveal that the new machine is the successor of the pro
	// model; augment and re-solve.
	ix, err := adapt.BuildSimilarityIndex([]adapt.SimilarityDoc{
		{Label: "brewmaster-pro", Text: "BrewMaster Pro espresso machine 15 bar steel"},
		{Label: "brewmaster-lite", Text: "BrewMaster Lite espresso machine 10 bar compact"},
		{Label: "espressino", Text: "Espressino capsule coffee maker compact"},
		{Label: "brewmaster-pro-2", Text: "BrewMaster Pro 2 espresso machine 15 bar steel successor"},
	}, adapt.SimilarityIndexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	augmented, rep, err := adapt.AugmentWithSimilarity(g, ix, adapt.AugmentOptions{
		MinAlternatives: 1, PerItem: 2, Alpha: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimilarity augmentation: %d sparse item(s), %d edge(s) added\n", rep.SparseItems, rep.EdgesAdded)
	newItem, _ := augmented.Lookup("brewmaster-pro-2")
	dsts, ws := augmented.OutEdges(newItem)
	for i, u := range dsts {
		fmt.Printf("  brewmaster-pro-2 -> %s (%.2f)\n", augmented.Label(u), ws[i])
	}
	fmt.Println()
	solve(augmented, "augmented")
}
