// Maintenance reduction: periodically dispose of the least valuable slice
// of a catalog to cut data-maintenance costs (the paper's third motivating
// scenario), here on a Motors-domain dataset where consumers are specific
// — automobile parts must fit — so the Normalized variant applies (at most
// one acceptable alternative per request).
//
// The example shows the variant-selection rule firing on the data, solves
// for the items to KEEP (disposing 40% — exaggerated versus the few
// percent of a real disposal so the demo shows measurable loss), and
// prints which disposed items lose the most demand — the review list a
// merchandiser would sanity-check.
//
// Run: go run ./examples/maintenance
package main

import (
	"fmt"
	"log"

	"prefcover"
	"prefcover/adapt"
	"prefcover/synth"
)

func main() {
	catSpec, sesSpec, err := synth.PresetSpecs(synth.PM, 0.0005, 99)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		log.Fatal(err)
	}

	// First pass: measure fitness; the Motors data is dominated by
	// single-alternative sessions, so the Normalized rule fires.
	_, rep, err := adapt.BuildGraph(sessions, adapt.Options{
		Variant: prefcover.Independent, ComputeFitness: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	variant, confident := rep.RecommendVariant()
	fmt.Printf("variant selection: single-alternative share %.1f%% (threshold %.0f%%) -> %s (confident=%v)\n",
		100*rep.SingleAlternativeShare, 100*adapt.NormalizedFitThreshold, variant, confident)

	sessions.Reset()
	g, _, err := adapt.BuildGraph(sessions, adapt.Options{Variant: variant})
	if err != nil {
		log.Fatal(err)
	}

	keep := g.NumNodes() * 60 / 100
	fmt.Printf("catalog: %d items; disposing %d (40%%), keeping %d\n\n", g.NumNodes(), g.NumNodes()-keep, keep)

	sol, err := prefcover.Solve(g, prefcover.Options{Variant: variant, K: keep, Lazy: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retained cover: %.3f%% of demand still purchasable\n", 100*sol.Cover)

	// Demand lost per disposed item = weight * (1 - coverage); review the
	// worst ten.
	report := prefcover.NewReport(g, variant, sol, 10)
	fmt.Println("\ndisposal review list (largest lost demand first):")
	fmt.Println("  item                weight   still covered  lost demand")
	var lost float64
	for _, item := range report.Affected {
		fmt.Printf("  %-18s  %.5f  %5.1f%%         %.5f\n",
			item.Label, item.Weight, 100*item.Coverage, item.Weight*(1-item.Coverage))
	}
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if !contains(sol.Order, v) {
			lost += g.NodeWeight(v) * (1 - sol.Coverage[v])
		}
	}
	fmt.Printf("\ntotal demand lost by the disposal: %.3f%%\n", 100*lost)
}

func contains(set []int32, v int32) bool {
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}
