// Profit-aware curation with live maintenance: the two extensions the
// paper's conclusion poses as future work, working together.
//
// Phase 1 (budgeted): items carry real revenues (commissions) and storage
// costs; the warehouse has a capacity budget. Maximize expected covered
// revenue under the budget, and compare against ignoring costs.
//
// Phase 2 (dynamic): demand then shifts over a simulated week; the tracker
// maintains the solution's exact revenue-coverage, suggests a cheap local
// exchange when one helps, and triggers a full re-solve when drift
// accumulates.
//
// Run: go run ./examples/profitcuration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"prefcover"
	"prefcover/budgeted"
	"prefcover/dynamic"
	"prefcover/synth"
)

func main() {
	g, err := synth.GenerateGraph(synth.GraphSpec{Nodes: 2000, AvgOutDegree: 5, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	n := g.NumNodes()
	revenue := make([]float64, n)
	cost := make([]float64, n)
	for v := 0; v < n; v++ {
		revenue[v] = 2 + 20*rng.Float64() // commission per sale, $2-22
		cost[v] = 0.5 + 2*rng.Float64()   // shelf units
	}
	budget := 200.0

	// Budgeted, revenue-aware plan.
	res, err := budgeted.Solve(g, budgeted.Spec{
		Variant: prefcover.Independent,
		Revenue: revenue,
		Cost:    cost,
		Budget:  budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget %.0f shelf units -> %d items, %.1f units used, strategy=%s\n",
		budget, len(res.Order), res.CostUsed, res.Strategy)
	fmt.Printf("expected covered revenue: $%.2f per 100 requests\n", 100*res.Revenue)

	// What ignoring revenue/cost would have done: plain top-k of the same
	// cardinality, scored on the same objective.
	plain, err := prefcover.Solve(g, prefcover.Options{
		Variant: prefcover.Independent, K: len(res.Order), Lazy: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	plainRevenue := scoreRevenue(g, revenue, plain.Order)
	var plainCost float64
	for _, v := range plain.Order {
		plainCost += cost[v]
	}
	fmt.Printf("cost-blind greedy at same size: $%.2f per 100 requests, %.1f units (budget %s)\n\n",
		100*plainRevenue, plainCost, feasibility(plainCost, budget))

	// Phase 2: live maintenance under demand drift.
	m, tracker, err := dynamic.TrackSolution(g, prefcover.Independent, &prefcover.Solution{Order: res.Order})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulating a week of demand drift:")
	ids := m.IDs()
	for day := 1; day <= 7; day++ {
		// Each day a handful of items trend up or crash.
		for i := 0; i < 40; i++ {
			id := ids[rng.Intn(len(ids))]
			w, err := m.Weight(id)
			if err != nil {
				log.Fatal(err)
			}
			factor := 0.2 + 1.8*rng.Float64()
			if err := tracker.SetWeight(id, w*factor); err != nil {
				log.Fatal(err)
			}
		}
		action := "hold"
		if ex, ok := tracker.BestExchange(1e-6); ok {
			if err := tracker.ApplyExchange(ex); err != nil {
				log.Fatal(err)
			}
			action = fmt.Sprintf("swap #%d -> #%d (+%.5f)", ex.Out, ex.In, ex.Delta)
		}
		fmt.Printf("  day %d: cover=%.4f drift=%.4f action=%s\n",
			day, tracker.Cover(), tracker.Drift(), action)
		if tracker.Drift() > 0.05 {
			resR, err := tracker.Resolve(0, prefcover.Options{Lazy: true})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("         drift threshold crossed: re-solved %.4f -> %.4f\n",
				resR.CoverBefore, resR.CoverAfter)
		}
	}
}

func scoreRevenue(g *prefcover.Graph, revenue []float64, set []int32) float64 {
	cov, err := prefcover.PerItemCoverage(g, prefcover.Independent, set)
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for v := 0; v < g.NumNodes(); v++ {
		total += revenue[v] * g.NodeWeight(int32(v)) * cov[v]
	}
	return total
}

func feasibility(cost, budget float64) string {
	if cost <= budget {
		return "ok"
	}
	return fmt.Sprintf("EXCEEDED by %.0f%%", 100*(cost/budget-1))
}
