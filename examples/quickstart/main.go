// Quickstart: the paper's running example (Figure 1 / Examples 1.1, 3.2).
//
// Five items A-E with purchase popularities and alternative edges; keep
// two. The naive choice (the two best sellers, A and B) satisfies 77% of
// requests; the Preference Cover solution {B, D} — including D, the WORST
// seller — satisfies 87.3%, because B covers most demand for A and C while
// D captures E's demand.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"prefcover"
)

func main() {
	b := prefcover.NewBuilder(5, 6)
	b.AddLabeledNode("A", 0.33) // best seller
	b.AddLabeledNode("B", 0.22)
	b.AddLabeledNode("C", 0.22)
	b.AddLabeledNode("D", 0.06) // worst seller — and part of the optimum!
	b.AddLabeledNode("E", 0.17)
	// An edge X -> Y with weight p: when X is unavailable, a consumer who
	// wanted X buys Y instead with probability p.
	b.AddLabeledEdge("A", "B", 2.0/3.0)
	b.AddLabeledEdge("A", "C", 0.3)
	b.AddLabeledEdge("B", "C", 0.8)
	b.AddLabeledEdge("C", "B", 1.0)
	b.AddLabeledEdge("D", "C", 0.5)
	b.AddLabeledEdge("E", "D", 0.9)
	g, err := b.Build(prefcover.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// The naive plan: retain the two best sellers.
	naive, naiveCover, err := prefcover.SolveBaseline(g, prefcover.Independent, 2, prefcover.BaselineTopKW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top sellers %s: %.1f%% of requests satisfied\n", labels(g, naive), 100*naiveCover)

	// The Preference Cover plan.
	sol, err := prefcover.Solve(g, prefcover.Options{Variant: prefcover.Independent, K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preference cover %s: %.1f%% of requests satisfied\n\n", labels(g, sol.Order), 100*sol.Cover)

	report := prefcover.NewReport(g, prefcover.Independent, sol, 0)
	if _, err := report.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func labels(g *prefcover.Graph, set []int32) []string {
	out := make([]string, len(set))
	for i, v := range set {
		out[i] = g.Label(v)
	}
	return out
}
