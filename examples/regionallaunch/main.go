// Regional launch: open a branch overseas with the smallest possible
// initial backlog (the paper's second motivating scenario, and its
// complementary minimization problem). Regulations limit how many products
// may be imported, so find the smallest item set whose coverage of home
// demand exceeds a target, at several targets.
//
// The greedy solver answers every threshold from one incremental run — no
// binary search over k — and the example contrasts its set sizes with the
// best-sellers and individual-coverage baselines (the paper's Figure 4f).
//
// Run: go run ./examples/regionallaunch
package main

import (
	"fmt"
	"log"

	"prefcover"
	"prefcover/adapt"
	"prefcover/quota"
	"prefcover/synth"
)

func main() {
	catSpec, sesSpec, err := synth.PresetSpecs(synth.YC, 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := synth.NewCatalog(catSpec)
	if err != nil {
		log.Fatal(err)
	}
	sessions, err := synth.GenerateSessions(cat, sesSpec)
	if err != nil {
		log.Fatal(err)
	}
	variant := prefcover.Independent
	g, rep, err := adapt.BuildGraph(sessions, adapt.Options{Variant: variant})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("home-market demand model: %d items, %d edges, from %d purchase sessions\n\n",
		g.NumNodes(), g.NumEdges(), rep.PurchaseSessions)

	for _, target := range []float64{0.5, 0.7, 0.9} {
		sol, err := prefcover.MinCover(g, variant, target)
		if err != nil {
			log.Fatal(err)
		}
		if !sol.Reached {
			log.Fatalf("target %.0f%% unreachable", 100*target)
		}
		fmt.Printf("target %.0f%% coverage -> import %d of %d items (%.1f%%), achieved %.2f%%\n",
			100*target, len(sol.Order), g.NumNodes(),
			100*float64(len(sol.Order))/float64(g.NumNodes()), 100*sol.Cover)
	}

	// How many items would the naive plans need for the hardest target?
	const target = 0.9
	sol, err := prefcover.MinCover(g, variant, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat the %.0f%% target:\n", 100*target)
	fmt.Printf("  preference cover: %4d items\n", len(sol.Order))
	for size := 1; size <= g.NumNodes(); size++ {
		set, cover, err := prefcover.SolveBaseline(g, variant, size, prefcover.BaselineTopKW)
		if err != nil {
			log.Fatal(err)
		}
		if cover >= target {
			fmt.Printf("  best sellers:     %4d items (+%d)\n", size, size-len(sol.Order))
			_ = set
			break
		}
	}
	for size := 1; size <= g.NumNodes(); size++ {
		_, cover, err := prefcover.SolveBaseline(g, variant, size, prefcover.BaselineTopKC)
		if err != nil {
			log.Fatal(err)
		}
		if cover >= target {
			fmt.Printf("  top coverage:     %4d items (+%d)\n", size, size-len(sol.Order))
			break
		}
	}

	// Regulations often also cap imports per supplier; re-plan the same
	// budget under per-supplier quotas and report the coverage cost of
	// the constraint. The synthetic catalog has no supplier field, so
	// assign suppliers by hashing the item label — eight suppliers of
	// roughly equal catalog share.
	const suppliers = 8
	groups := make([]int32, g.NumNodes())
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		var h uint32 = 2166136261
		for _, c := range []byte(g.Label(v)) {
			h = (h ^ uint32(c)) * 16777619
		}
		groups[v] = int32(h % suppliers)
	}
	k := len(sol.Order)
	perGroup := k / suppliers // deliberately tight: forces redistribution
	if perGroup < 1 {
		perGroup = 1
	}
	caps := make([]int, suppliers)
	for i := range caps {
		caps[i] = perGroup
	}
	constrained, err := quota.Solve(g, quota.Spec{
		Variant:     variant,
		K:           k,
		Group:       groups,
		MaxPerGroup: caps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith import caps of %d per supplier (%d suppliers):\n", perGroup, suppliers)
	fmt.Printf("  retained %d of the %d-item budget, covering %.2f%% (unconstrained: %.2f%%)\n",
		len(constrained.Order), k, 100*constrained.Cover, 100*sol.Cover)
	fmt.Printf("  per-supplier retention: %v\n", constrained.GroupCounts)
}
